#include "core/audit.h"

#include <algorithm>
#include <span>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/bernoulli_statistic.h"
#include "core/multinomial_statistic.h"

namespace sfa::core {

Result<std::shared_ptr<const ScanStatistic>> MakeScanStatistic(
    const AuditOptions& options, const data::OutcomeDataset& view) {
  switch (options.statistic) {
    case StatisticKind::kBernoulli:
      return std::shared_ptr<const ScanStatistic>(
          std::make_shared<BernoulliScanStatistic>(
              options.direction, view.size(), view.PositiveCount()));
    case StatisticKind::kMultinomial: {
      SFA_ASSIGN_OR_RETURN(
          std::unique_ptr<MultinomialScanStatistic> statistic,
          MultinomialScanStatistic::FromOutcomes(
              view.predicted().data(), view.predicted().size(),
              options.num_classes));
      return std::shared_ptr<const ScanStatistic>(std::move(statistic));
    }
  }
  return Status::InvalidArgument("unknown statistic kind");
}

Result<AuditResult> Auditor::Audit(const data::OutcomeDataset& dataset,
                                   const RegionFamily& family) const {
  SFA_ASSIGN_OR_RETURN(data::OutcomeDataset view,
                       BuildMeasureView(dataset, options_.measure));
  return AuditView(view, family);
}

Result<AuditResult> Auditor::AuditView(const data::OutcomeDataset& view,
                                       const RegionFamily& family) const {
  return AuditView(view, family, /*statistic=*/nullptr, /*calibration=*/nullptr,
                   /*scratch=*/nullptr);
}

Result<AuditResult> Auditor::AuditView(const data::OutcomeDataset& view,
                                       const RegionFamily& family,
                                       const NullDistribution* calibration,
                                       AuditScratch* scratch) const {
  return AuditView(view, family, /*statistic=*/nullptr, calibration, scratch);
}

Result<AuditResult> Auditor::AuditView(const data::OutcomeDataset& view,
                                       const RegionFamily& family,
                                       const ScanStatistic* statistic,
                                       const NullDistribution* calibration,
                                       AuditScratch* scratch) const {
  if (view.empty()) return Status::InvalidArgument("empty audit view");
  if (view.size() != family.num_points()) {
    return Status::InvalidArgument(StrFormat(
        "region family is bound to %zu points but the measure view has %zu; "
        "build the family from the view's locations",
        family.num_points(), view.size()));
  }
  if (options_.alpha <= 0.0 || options_.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }

  // The outcome model: injected (pipeline) or built from the options. An
  // injected statistic arrives VALIDATED against this view (the pipeline's
  // prepare phase ran ValidateOutcomes before keying the calibration), so
  // the O(N) outcome scans are not repeated on the pooled hot path. For a
  // locally-built statistic, the multiclass-aware Validate covers structure
  // and outcome range, and construction from this same view guarantees the
  // statistic's totals match it.
  std::shared_ptr<const ScanStatistic> owned_statistic;
  if (statistic == nullptr) {
    const uint32_t expected_classes =
        options_.statistic == StatisticKind::kMultinomial
            ? options_.num_classes
            : 2;
    SFA_RETURN_NOT_OK(view.Validate(expected_classes));
    SFA_ASSIGN_OR_RETURN(owned_statistic, MakeScanStatistic(options_, view));
    statistic = owned_statistic.get();
  }

  AuditResult result;
  result.alpha = options_.alpha;
  result.statistic = statistic->kind();
  result.class_distribution = statistic->ClassDistribution();

  // Observed world (scratch recycles the label buffers across pooled calls).
  AuditScratch local_scratch;
  AuditScratch& s = scratch != nullptr ? *scratch : local_scratch;
  result.observed = statistic->ScanObserved(family, view.predicted().data(),
                                            view.predicted().size(), &s);
  result.tau = result.observed.max_llr;
  result.best_region = result.observed.argmax;
  result.total_n = result.observed.total_n;
  result.total_p = result.observed.total_p;
  result.overall_rate =
      statistic->kind() == StatisticKind::kBernoulli ? view.PositiveRate()
                                                     : 0.0;

  // Null calibration: injected (calibration cache) or simulated in place.
  if (calibration != nullptr) {
    result.null_distribution = *calibration;
  } else {
    MonteCarloOptions mc = options_.monte_carlo;
    if (mc.adaptive.enabled) {
      // The adaptive stopping rule is defined relative to THIS audit's
      // observed statistic and significance level; resolve them here so the
      // caller only flips adaptive.enabled (the pipeline does the same in
      // its prepare phase before keying the calibration).
      mc.adaptive.observed = result.tau;
      mc.adaptive.alpha = options_.alpha;
    }
    SFA_ASSIGN_OR_RETURN(result.null_distribution,
                         SimulateNull(*statistic, family, mc));
  }
  const PValueEstimate estimate =
      result.null_distribution.ResolvePValue(result.tau, options_.significance);
  result.p_value = estimate.p_value;
  result.p_value_method = estimate.method;
  result.tail_fit_ok = estimate.tail_fit_ok;
  result.tail_ks = estimate.tail_ks;
  result.spatially_fair = result.p_value > options_.alpha;
  // The evidence threshold: exact empirical when resolvable; for the
  // tail-aware methods an unresolvable threshold degrades to the Gumbel
  // quantile advisory (kEmpirical keeps the historical +inf).
  const CriticalValueInfo critical = result.null_distribution.CriticalValueEx(
      options_.alpha,
      /*tail_advisory=*/options_.significance != SignificanceMethod::kEmpirical);
  result.critical_value = critical.value;
  result.critical_value_resolvable = critical.resolvable;
  result.critical_value_advisory = critical.advisory_tail;

  // Evidence: regions individually significant against the null max
  // distribution, ranked by Λ (equivalently by SUL, since log SUL =
  // Λ + log L0max and L0max is constant across regions).
  for (size_t r = 0; r < family.num_regions(); ++r) {
    const double llr = result.observed.llr[r];
    if (!(llr > result.critical_value)) continue;
    const RegionDescriptor desc = family.Describe(r);
    RegionFinding finding;
    finding.region_index = r;
    finding.rect = desc.rect;
    finding.label = desc.label;
    finding.group = desc.group;
    finding.llr = llr;
    finding.significant = true;
    finding.advisory = critical.advisory_tail;
    statistic->FillFinding(family, result.observed, r, &finding);
    result.findings.push_back(std::move(finding));
  }
  // Tie-break on region index: equal-Λ findings (e.g. two partitions with
  // the same counts) must rank identically on every platform — the pipeline
  // determinism contract and the golden pins cover finding order.
  std::sort(result.findings.begin(), result.findings.end(),
            [](const RegionFinding& a, const RegionFinding& b) {
              if (a.llr != b.llr) return a.llr > b.llr;
              return a.region_index < b.region_index;
            });
  return result;
}

bool ResultsBitIdentical(const AuditResult& a, const AuditResult& b) {
  if (a.spatially_fair != b.spatially_fair || a.p_value != b.p_value ||
      a.p_value_method != b.p_value_method ||
      a.tail_fit_ok != b.tail_fit_ok || a.tail_ks != b.tail_ks ||
      a.tau != b.tau || a.best_region != b.best_region ||
      a.critical_value != b.critical_value ||
      a.critical_value_resolvable != b.critical_value_resolvable ||
      a.critical_value_advisory != b.critical_value_advisory ||
      a.alpha != b.alpha ||
      a.total_n != b.total_n || a.total_p != b.total_p ||
      a.overall_rate != b.overall_rate || a.statistic != b.statistic ||
      a.class_distribution != b.class_distribution) {
    return false;
  }
  if (a.observed.llr != b.observed.llr ||
      a.observed.positives != b.observed.positives ||
      a.observed.max_llr != b.observed.max_llr ||
      a.observed.argmax != b.observed.argmax ||
      a.observed.total_n != b.observed.total_n ||
      a.observed.total_p != b.observed.total_p ||
      a.observed.class_counts != b.observed.class_counts ||
      a.observed.num_classes != b.observed.num_classes) {
    return false;
  }
  const std::span<const double> a_max = a.null_distribution.sorted_max();
  const std::span<const double> b_max = b.null_distribution.sorted_max();
  if (!std::equal(a_max.begin(), a_max.end(), b_max.begin(), b_max.end()) ||
      a.null_distribution.worlds_requested() !=
          b.null_distribution.worlds_requested() ||
      a.null_distribution.stop_reason() != b.null_distribution.stop_reason()) {
    return false;
  }
  if (a.findings.size() != b.findings.size()) return false;
  for (size_t i = 0; i < a.findings.size(); ++i) {
    const RegionFinding& fa = a.findings[i];
    const RegionFinding& fb = b.findings[i];
    if (fa.region_index != fb.region_index || !(fa.rect == fb.rect) ||
        fa.label != fb.label || fa.group != fb.group || fa.n != fb.n ||
        fa.p != fb.p || fa.local_rate != fb.local_rate || fa.llr != fb.llr ||
        fa.log_sul != fb.log_sul || fa.significant != fb.significant ||
        fa.advisory != fb.advisory || fa.class_counts != fb.class_counts) {
      return false;
    }
  }
  return true;
}

}  // namespace sfa::core
