// The top-level audit API — the paper's framework end to end:
//
//   1. build the outcome stream for the chosen fairness measure;
//   2. scan the region family for the observed max statistic τ = Λ(R*);
//   3. calibrate by Monte Carlo (W-1 alternate worlds) and compute the
//      p-value of τ;
//   4. verdict: spatially fair iff p > α ("is it fair?");
//   5. evidence: every region whose Λ exceeds the null critical value,
//      ranked by SUL ("where is it unfair?").
//
// Steps 2, 3, and 5 are statistic-generic: the outcome model is a pluggable
// core::ScanStatistic (Bernoulli by default — the paper's binary test;
// multinomial for full class-distribution audits), selected via
// AuditOptions::statistic and built per audit by MakeScanStatistic.
#ifndef SFA_CORE_AUDIT_H_
#define SFA_CORE_AUDIT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/measure.h"
#include "core/region_family.h"
#include "core/scan.h"
#include "core/scan_statistic.h"
#include "core/significance.h"
#include "data/dataset.h"

namespace sfa::core {

struct AuditOptions {
  /// Significance level α of the likelihood-ratio test (paper uses 0.005).
  double alpha = 0.005;
  FairnessMeasure measure = FairnessMeasure::kStatisticalParity;
  stats::ScanDirection direction = stats::ScanDirection::kTwoSided;
  /// Outcome model of the scan. kBernoulli audits the rate of a binary
  /// outcome (the paper's test); kMultinomial audits the full class
  /// distribution of a categorical outcome (set num_classes).
  StatisticKind statistic = StatisticKind::kBernoulli;
  /// Number of outcome classes for kMultinomial (>= 2); the view's predicted
  /// values must lie in [0, num_classes). Ignored for kBernoulli.
  uint32_t num_classes = 0;
  /// How the p-value of τ is computed from the calibration. kEmpirical is
  /// the paper's rank p-value (resolution capped at 1/(W+1)); kAuto keeps
  /// the rank p-value in-range and falls back to the Gumbel tail fit — when
  /// the KS fit gate passes — only for τ beyond every simulated maximum;
  /// kGumbelTail always prefers the fit. A query-time choice: it does NOT
  /// shape the null draws, so all three methods share calibrations (and
  /// calibration keys). Default stays kEmpirical to preserve historical
  /// p-values byte-for-byte.
  SignificanceMethod significance = SignificanceMethod::kEmpirical;
  MonteCarloOptions monte_carlo;
};

struct AuditResult {
  /// The verdict: true when the null (spatial fairness) is *not* rejected.
  bool spatially_fair = true;
  double p_value = 1.0;
  /// Which method produced p_value: kEmpirical (rank), or kGumbelTail when
  /// the tail fit was used (never kAuto — auto resolves to one of the two).
  SignificanceMethod p_value_method = SignificanceMethod::kEmpirical;
  /// Tail-fit health when a fit was attempted (kGumbelTail / out-of-range
  /// kAuto): KS distance of the fitted CDF vs the empirical maxima, and
  /// whether it passed the gate. tail_ks stays 1.0 when never attempted.
  bool tail_fit_ok = false;
  double tail_ks = 1.0;
  double tau = 0.0;              ///< observed max Λ
  size_t best_region = 0;        ///< R*
  double critical_value = 0.0;   ///< per-region significance threshold at α
  /// False when the empirical threshold is unresolvable at this world budget
  /// (floor(alpha*(W+1)) == 0, critical_value then +inf or advisory).
  bool critical_value_resolvable = false;
  /// True when critical_value is the Gumbel-quantile ADVISORY threshold used
  /// in place of an unresolvable empirical one (non-kEmpirical methods only).
  bool critical_value_advisory = false;
  double alpha = 0.0;
  uint64_t total_n = 0;          ///< N in the measure view
  uint64_t total_p = 0;          ///< P in the measure view (Bernoulli; 0 else)
  double overall_rate = 0.0;     ///< ρ (Bernoulli; 0 for multinomial)
  /// The outcome model that produced this result.
  StatisticKind statistic = StatisticKind::kBernoulli;
  /// Global empirical class proportions (multinomial; empty for Bernoulli).
  std::vector<double> class_distribution;
  /// Significant regions ranked by Λ (equivalently SUL) descending.
  std::vector<RegionFinding> findings;
  /// Full per-region scan of the observed world (parallel to family regions).
  ScanResult observed;
  NullDistribution null_distribution;

  /// Findings count (convenience).
  size_t num_significant() const { return findings.size(); }
};

/// True iff two results carry the SAME statistical payload, bit-for-bit:
/// verdict, p-value, τ, thresholds, totals, the full observed per-region
/// scan, the null distribution, and every field of every finding (exact
/// double equality throughout — no tolerance). This is the authoritative
/// field list of the pipeline determinism contract; the determinism test
/// suites and the restart-replay example both delegate to it so the list
/// cannot silently fork when AuditResult grows a field.
bool ResultsBitIdentical(const AuditResult& a, const AuditResult& b);

/// Builds the scan statistic `options` select, bound to the totals of
/// `view`: a BernoulliScanStatistic over (N, P, direction), or a
/// MultinomialScanStatistic over the view's per-class totals. Fails when the
/// view's outcomes don't fit the statistic (non-binary values for Bernoulli,
/// class ids outside [0, num_classes) or num_classes < 2 for multinomial).
Result<std::shared_ptr<const ScanStatistic>> MakeScanStatistic(
    const AuditOptions& options, const data::OutcomeDataset& view);

class Auditor {
 public:
  explicit Auditor(AuditOptions options) : options_(std::move(options)) {}

  const AuditOptions& options() const { return options_; }

  /// Runs the full audit of `dataset` against `family`. The family must be
  /// bound to the locations of the *measure view* of the dataset (see
  /// BuildMeasureView); Audit checks the sizes match.
  Result<AuditResult> Audit(const data::OutcomeDataset& dataset,
                            const RegionFamily& family) const;

  /// Audits a pre-built measure view (locations + outcomes).
  Result<AuditResult> AuditView(const data::OutcomeDataset& view,
                                const RegionFamily& family) const;

  /// Pipeline entry point: AuditView with an optionally injected statistic
  /// and null calibration plus pooled scratch. When `statistic` is non-null
  /// it is used instead of MakeScanStatistic (the caller vouches it was
  /// built for this view's totals and these options). When `calibration` is
  /// non-null it is used verbatim instead of running SimulateNull — the
  /// caller (e.g. core::CalibrationCache) vouches that it was simulated for
  /// this family, this statistic, and these Monte Carlo options, so a cache
  /// hit yields a byte-identical AuditResult to a fresh simulation.
  /// `scratch` (optional) recycles observed-world buffers across calls; it
  /// must not be shared between concurrent calls.
  Result<AuditResult> AuditView(const data::OutcomeDataset& view,
                                const RegionFamily& family,
                                const ScanStatistic* statistic,
                                const NullDistribution* calibration,
                                AuditScratch* scratch) const;

  /// Back-compat overload without statistic injection.
  Result<AuditResult> AuditView(const data::OutcomeDataset& view,
                                const RegionFamily& family,
                                const NullDistribution* calibration,
                                AuditScratch* scratch) const;

 private:
  AuditOptions options_;
};

}  // namespace sfa::core

#endif  // SFA_CORE_AUDIT_H_
