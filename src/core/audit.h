// The top-level audit API — the paper's framework end to end:
//
//   1. build the outcome stream for the chosen fairness measure;
//   2. scan the region family for the observed max statistic τ = Λ(R*);
//   3. calibrate by Monte Carlo (W-1 alternate worlds) and compute the
//      p-value of τ;
//   4. verdict: spatially fair iff p > α ("is it fair?");
//   5. evidence: every region whose Λ exceeds the null critical value,
//      ranked by SUL ("where is it unfair?").
#ifndef SFA_CORE_AUDIT_H_
#define SFA_CORE_AUDIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/measure.h"
#include "core/region_family.h"
#include "core/scan.h"
#include "core/significance.h"
#include "data/dataset.h"

namespace sfa::core {

struct AuditOptions {
  /// Significance level α of the likelihood-ratio test (paper uses 0.005).
  double alpha = 0.005;
  FairnessMeasure measure = FairnessMeasure::kStatisticalParity;
  stats::ScanDirection direction = stats::ScanDirection::kTwoSided;
  MonteCarloOptions monte_carlo;
};

/// One region offered as evidence of spatial unfairness.
struct RegionFinding {
  size_t region_index = 0;
  geo::Rect rect;
  std::string label;
  uint32_t group = 0;
  uint64_t n = 0;          ///< individuals inside
  uint64_t p = 0;          ///< positives inside
  double local_rate = 0.0; ///< ρ(R) = p/n
  double llr = 0.0;        ///< Λ(R); ranking by Λ == ranking by SUL
  double log_sul = 0.0;    ///< log of the paper's Eq. 1
  bool significant = false;
};

struct AuditResult {
  /// The verdict: true when the null (spatial fairness) is *not* rejected.
  bool spatially_fair = true;
  double p_value = 1.0;
  double tau = 0.0;              ///< observed max Λ
  size_t best_region = 0;        ///< R*
  double critical_value = 0.0;   ///< per-region significance threshold at α
  double alpha = 0.0;
  uint64_t total_n = 0;          ///< N in the measure view
  uint64_t total_p = 0;          ///< P in the measure view
  double overall_rate = 0.0;     ///< ρ
  /// Significant regions ranked by Λ (equivalently SUL) descending.
  std::vector<RegionFinding> findings;
  /// Full per-region scan of the observed world (parallel to family regions).
  ScanResult observed;
  NullDistribution null_distribution;

  /// Findings count (convenience).
  size_t num_significant() const { return findings.size(); }
};

/// True iff two results carry the SAME statistical payload, bit-for-bit:
/// verdict, p-value, τ, thresholds, totals, the full observed per-region
/// scan, the null distribution, and every field of every finding (exact
/// double equality throughout — no tolerance). This is the authoritative
/// field list of the pipeline determinism contract; the determinism test
/// suites and the restart-replay example both delegate to it so the list
/// cannot silently fork when AuditResult grows a field.
bool ResultsBitIdentical(const AuditResult& a, const AuditResult& b);

/// Reusable per-thread buffers for pooled audit execution: the audit
/// pipeline keeps one AuditScratch per worker so the steady state of a
/// request stream allocates no observed-world storage and rebuilds the
/// O(N)-std::log likelihood table only when the view size changes. Plain
/// Audit/AuditView calls allocate transparently when no scratch is supplied.
struct AuditScratch {
  Labels observed_labels;
  std::optional<stats::LogLikelihoodTable> table;

  /// The k·log k table for views of `total_n` points, rebuilt on size change.
  const stats::LogLikelihoodTable& TableFor(uint64_t total_n) {
    if (!table.has_value() || table->max_count() != total_n) {
      table.emplace(total_n);
    }
    return *table;
  }
};

class Auditor {
 public:
  explicit Auditor(AuditOptions options) : options_(std::move(options)) {}

  const AuditOptions& options() const { return options_; }

  /// Runs the full audit of `dataset` against `family`. The family must be
  /// bound to the locations of the *measure view* of the dataset (see
  /// BuildMeasureView); Audit checks the sizes match.
  Result<AuditResult> Audit(const data::OutcomeDataset& dataset,
                            const RegionFamily& family) const;

  /// Audits a pre-built measure view (locations + 0/1 outcomes).
  Result<AuditResult> AuditView(const data::OutcomeDataset& view,
                                const RegionFamily& family) const;

  /// Pipeline entry point: AuditView with an optionally injected null
  /// calibration and pooled scratch. When `calibration` is non-null it is
  /// used verbatim instead of running SimulateNull — the caller (e.g.
  /// core::CalibrationCache) vouches that it was simulated for this family,
  /// this view's totals, this direction, and these Monte Carlo options, so a
  /// cache hit yields a byte-identical AuditResult to a fresh simulation.
  /// `scratch` (optional) recycles observed-world buffers across calls; it
  /// must not be shared between concurrent calls.
  Result<AuditResult> AuditView(const data::OutcomeDataset& view,
                                const RegionFamily& family,
                                const NullDistribution* calibration,
                                AuditScratch* scratch) const;

 private:
  AuditOptions options_;
};

}  // namespace sfa::core

#endif  // SFA_CORE_AUDIT_H_
