#include "core/multinomial_statistic.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace sfa::core {

namespace {

/// Σ_k C_k log(C_k/N): the maximized null log-likelihood (the multinomial
/// analog of stats::NullLogLikelihood), used for the SUL-style evidence
/// field only — the scan itself runs through the k·log k table.
double MultinomialNullLogLikelihood(const std::vector<uint64_t>& totals,
                                    uint64_t total_n) {
  double ll = 0.0;
  for (uint64_t c : totals) {
    if (c == 0) continue;
    ll += static_cast<double>(c) *
          std::log(static_cast<double>(c) / static_cast<double>(total_n));
  }
  return ll;
}

/// Λ(R) from per-class inside counts via the shared k·log k table:
///
///   Λ = (Σ_k t[c_k] − t[n]) + (Σ_k t[d_k] − t[m]) − null_term
///
/// with t[k] = k log k, d_k = W_k − c_k, m = N − n, and null_term =
/// Σ_k t[W_k] − t[N] hoisted per world (W_k are that world's class totals).
/// counts_by_class[k] points at the per-region counts of class k for
/// k < K−1; the last class is derived from n(R). The clamp at 0 matches
/// stats::MultinomialLogLikelihoodRatio's (nested hypotheses: Λ >= 0
/// mathematically; floating-point residue only). The observed scan and every
/// null world share this exact operation order, so rank-p-value ties are
/// exact (the Bernoulli arithmetic contract, core/scan.h).
double RegionLlrFromTable(const uint64_t* const* counts_by_class, size_t r,
                          uint32_t num_classes, uint64_t region_n,
                          uint64_t total_n, const uint64_t* world_totals,
                          double null_term,
                          const stats::LogLikelihoodTable& table) {
  const uint64_t m = total_n - region_n;
  if (region_n == 0 || m == 0) return 0.0;  // degenerate: alternative collapses
  double t_in = 0.0;
  double t_out = 0.0;
  uint64_t counted = 0;
  for (uint32_t k = 0; k + 1 < num_classes; ++k) {
    const uint64_t c = counts_by_class[k][r];
    counted += c;
    t_in += table.klogk(c);
    t_out += table.klogk(world_totals[k] - c);
  }
  const uint64_t c_last = region_n - counted;
  t_in += table.klogk(c_last);
  t_out += table.klogk(world_totals[num_classes - 1] - c_last);
  const double llr = (t_in - table.klogk(region_n)) +
                     (t_out - table.klogk(m)) - null_term;
  return llr < 0.0 ? 0.0 : llr;
}

double WorldNullTerm(const uint64_t* world_totals, uint32_t num_classes,
                     uint64_t total_n, const stats::LogLikelihoodTable& table) {
  double t = 0.0;
  for (uint32_t k = 0; k < num_classes; ++k) t += table.klogk(world_totals[k]);
  return t - table.klogk(total_n);
}

/// Draws Multinomial(n, q) by chained binomials: class k gets
/// Binomial(remaining, q_k / rest-mass), the last class the remainder. Cell
/// and class order are fixed, so for a given per-world RNG the draw is
/// identical in every engine strategy. Writes K counts to `out` and returns
/// nothing beyond them.
void DrawMultinomial(uint64_t n, const std::vector<double>& q, Rng* rng,
                     uint64_t* out) {
  const uint32_t num_classes = static_cast<uint32_t>(q.size());
  uint64_t remaining = n;
  double rest = 1.0;
  for (uint32_t k = 0; k + 1 < num_classes; ++k) {
    double p = rest > 0.0 ? q[k] / rest : 1.0;
    if (p > 1.0) p = 1.0;
    const uint64_t draw = remaining > 0 ? rng->Binomial(remaining, p) : 0;
    out[k] = draw;
    remaining -= draw;
    rest -= q[k];
  }
  out[num_classes - 1] = remaining;
}

/// Thread-local buffer pool of both engine strategies: packed class worlds,
/// per-class count rows, and per-cell class draws — after a worker's first
/// batch (or reference world) the steady state allocates nothing.
struct MultinomialArena {
  std::vector<uint8_t> classes;        // one world's per-point class draws
  std::vector<uint8_t> indicator;      // one class's 0/1 bytes (reference)
  Labels ref_labels;                   // pooled indicator Labels (reference)
  std::vector<uint8_t> class_worlds;   // worlds × N packed class codes
  std::vector<const uint8_t*> class_world_ptrs;
  std::vector<uint64_t> counts;        // worlds × (K-1) × regions
  std::vector<uint64_t> world_totals;  // worlds × K
  std::vector<uint32_t> cell_class;    // one world's per-cell draws, one class
  std::vector<uint64_t> cell_draw;     // one cell's K draws
  std::vector<uint64_t> region_counts; // (K-1) × regions, one world
  std::vector<uint64_t> scalar_counts; // CountPositives output row (reference)
  std::vector<const uint64_t*> class_ptrs;
};

MultinomialArena& LocalArena() {
  static thread_local MultinomialArena arena;
  return arena;
}

/// Per-simulation immutable context, shared read-only across workers.
class MultinomialSimulation : public StatisticSimulation {
 public:
  MultinomialSimulation(const RegionFamily& family,
                        std::vector<uint64_t> class_totals,
                        std::vector<double> q, const MonteCarloOptions& options)
      : family_(family),
        class_totals_(std::move(class_totals)),
        q_(std::move(q)),
        options_(options),
        table_(family.num_points()),
        cells_(options.closed_form_cells &&
                       options.null_model == NullModel::kBernoulli
                   ? family.cell_decomposition()
                   : nullptr),
        root_(options.seed) {
    region_n_.resize(family_.num_regions());
    for (size_t r = 0; r < region_n_.size(); ++r) {
      region_n_[r] = family_.PointCount(r);
    }
    // Cumulative class thresholds for the branchless per-point draw in
    // DrawPointClasses: class k wins when the uniform lands in
    // [prefix[k-1], prefix[k]). The last threshold is the exact weight total,
    // so u = NextDouble() * total < prefix[K-1] always classifies.
    q_prefix_.resize(q_.size());
    double acc = 0.0;
    for (size_t k = 0; k < q_.size(); ++k) {
      acc += q_[k];
      q_prefix_[k] = acc;
    }
  }

  double RunWorldReference(size_t w) const override {
    Rng rng = root_.Split(w);
    const uint32_t num_classes = static_cast<uint32_t>(q_.size());
    const size_t num_regions = family_.num_regions();
    const uint64_t total_n = family_.num_points();
    std::vector<uint64_t> world_totals(num_classes, 0);

    if (cells_ != nullptr) {
      // Closed-form: one Multinomial(n_c, q) per cell (plus the outside
      // points, which shift world totals only), folded to per-region counts
      // through the family's cell mapping — never labeling a point.
      const size_t num_cells = cells_->cell_counts.size();
      std::vector<uint32_t> cell_class(num_cells * (num_classes - 1));
      std::vector<uint64_t> draw(num_classes);
      for (size_t c = 0; c < num_cells; ++c) {
        DrawMultinomial(cells_->cell_counts[c], q_, &rng, draw.data());
        for (uint32_t k = 0; k < num_classes; ++k) world_totals[k] += draw[k];
        for (uint32_t k = 0; k + 1 < num_classes; ++k) {
          cell_class[static_cast<size_t>(k) * num_cells + c] =
              static_cast<uint32_t>(draw[k]);
        }
      }
      if (cells_->num_outside > 0) {
        DrawMultinomial(cells_->num_outside, q_, &rng, draw.data());
        for (uint32_t k = 0; k < num_classes; ++k) world_totals[k] += draw[k];
      }
      std::vector<uint64_t> counts(num_regions * (num_classes - 1));
      std::vector<const uint64_t*> class_ptrs(num_classes - 1);
      for (uint32_t k = 0; k + 1 < num_classes; ++k) {
        family_.CountPositivesFromCells(
            cell_class.data() + static_cast<size_t>(k) * num_cells,
            counts.data() + static_cast<size_t>(k) * num_regions);
        class_ptrs[k] = counts.data() + static_cast<size_t>(k) * num_regions;
      }
      return MaxLlr(class_ptrs.data(), world_totals.data(), num_classes,
                    total_n);
    }

    // Reference oracle of the label-world path: K−1 indicator passes through
    // the scalar binary counting interface — the construction
    // CountClassesBatch must reproduce exactly. All O(N)/O(regions) buffers
    // (including the indicator Labels) live in the thread-local arena, so
    // reference worlds allocate nothing in steady state and stay timing-
    // comparable with the batched strategy.
    MultinomialArena& arena = LocalArena();
    arena.classes.resize(total_n);
    arena.indicator.resize(total_n);
    arena.region_counts.resize(num_regions * (num_classes - 1));
    arena.class_ptrs.resize(num_classes - 1);
    DrawPointClasses(&rng, arena.classes.data(), total_n, world_totals.data());
    for (uint32_t k = 0; k + 1 < num_classes; ++k) {
      for (size_t i = 0; i < total_n; ++i) {
        arena.indicator[i] = arena.classes[i] == k ? 1 : 0;
      }
      arena.ref_labels.AssignBytes(arena.indicator.data(), total_n);
      family_.CountPositives(arena.ref_labels, &arena.scalar_counts);
      std::copy(arena.scalar_counts.begin(), arena.scalar_counts.end(),
                arena.region_counts.begin() +
                    static_cast<size_t>(k) * num_regions);
      arena.class_ptrs[k] =
          arena.region_counts.data() + static_cast<size_t>(k) * num_regions;
    }
    return MaxLlr(arena.class_ptrs.data(), world_totals.data(), num_classes,
                  total_n);
  }

  void RunWorldBatch(size_t w_lo, size_t w_hi, double* out) const override {
    const size_t worlds = w_hi - w_lo;
    const uint32_t num_classes = static_cast<uint32_t>(q_.size());
    const size_t num_regions = family_.num_regions();
    const uint64_t total_n = family_.num_points();
    MultinomialArena& arena = LocalArena();
    arena.world_totals.assign(worlds * num_classes, 0);
    arena.class_ptrs.resize(num_classes - 1);

    if (cells_ != nullptr) {
      // Closed-form worlds have no cross-world memory traffic to amortize
      // (like the Bernoulli statistic's cell path): a plain loop over pooled
      // buffers.
      const size_t num_cells = cells_->cell_counts.size();
      arena.cell_class.resize(num_cells * (num_classes - 1));
      arena.cell_draw.resize(num_classes);
      arena.region_counts.resize(num_regions * (num_classes - 1));
      for (size_t w = w_lo; w < w_hi; ++w) {
        Rng rng = root_.Split(w);
        uint64_t* world_totals =
            arena.world_totals.data() + (w - w_lo) * num_classes;
        for (size_t c = 0; c < num_cells; ++c) {
          DrawMultinomial(cells_->cell_counts[c], q_, &rng,
                          arena.cell_draw.data());
          for (uint32_t k = 0; k < num_classes; ++k) {
            world_totals[k] += arena.cell_draw[k];
          }
          for (uint32_t k = 0; k + 1 < num_classes; ++k) {
            arena.cell_class[static_cast<size_t>(k) * num_cells + c] =
                static_cast<uint32_t>(arena.cell_draw[k]);
          }
        }
        if (cells_->num_outside > 0) {
          DrawMultinomial(cells_->num_outside, q_, &rng,
                          arena.cell_draw.data());
          for (uint32_t k = 0; k < num_classes; ++k) {
            world_totals[k] += arena.cell_draw[k];
          }
        }
        for (uint32_t k = 0; k + 1 < num_classes; ++k) {
          family_.CountPositivesFromCells(
              arena.cell_class.data() + static_cast<size_t>(k) * num_cells,
              arena.region_counts.data() +
                  static_cast<size_t>(k) * num_regions);
          arena.class_ptrs[k] =
              arena.region_counts.data() + static_cast<size_t>(k) * num_regions;
        }
        out[w] = MaxLlr(arena.class_ptrs.data(), world_totals, num_classes,
                        total_n);
      }
      return;
    }

    // Label-world path: draw every world's classes as ONE packed class-code
    // array, then a single CountClassesBatch pass over the family's geometry
    // produces all K−1 per-class count rows for the whole batch — the K−1
    // indicator materializations and repeated counting passes of the legacy
    // construction (kept above as RunWorldReference's oracle) disappear.
    // All offsets into the worlds × (K−1) × regions buffer go through the
    // size_t-widening ClassCountRowOffset helper; forming them from narrower
    // products overflows at paper-scale configs.
    const uint32_t counted = num_classes - 1;
    const size_t points = static_cast<size_t>(total_n);
    arena.class_worlds.resize(worlds * points);
    arena.class_world_ptrs.resize(worlds);
    for (size_t j = 0; j < worlds; ++j) {
      Rng rng = root_.Split(w_lo + j);
      uint8_t* world = arena.class_worlds.data() + j * points;
      DrawPointClasses(&rng, world, total_n,
                       arena.world_totals.data() + j * num_classes);
      arena.class_world_ptrs[j] = world;
    }
    arena.counts.resize(ClassCountBufferSize(worlds, counted, num_regions));
    family_.CountClassesBatch(arena.class_world_ptrs.data(), worlds,
                              num_classes, arena.counts.data());
    for (size_t j = 0; j < worlds; ++j) {
      for (uint32_t k = 0; k < counted; ++k) {
        arena.class_ptrs[k] =
            arena.counts.data() +
            ClassCountRowOffset(j, k, counted, num_regions);
      }
      out[w_lo + j] =
          MaxLlr(arena.class_ptrs.data(),
                 arena.world_totals.data() + j * num_classes, num_classes,
                 total_n);
    }
  }

 private:
  /// Draws one world's per-point classes into `classes` and accumulates the
  /// world's class totals. kBernoulli: i.i.d. Categorical(q) per point;
  /// kPermutation: the exact observed class multiset, Fisher-Yates shuffled.
  void DrawPointClasses(Rng* rng, uint8_t* classes, uint64_t total_n,
                        uint64_t* world_totals) const {
    const uint32_t num_classes = static_cast<uint32_t>(q_.size());
    if (options_.null_model == NullModel::kBernoulli) {
      // Branchless Categorical(q): one uniform per point compared against the
      // precomputed cumulative thresholds. Data-dependent branches are poison
      // here — with q near uniform every compare is a coin flip, and the
      // mispredict cost dwarfs the arithmetic — so the class index is a sum
      // of comparison results instead (K-1 flagless adds; for the paper's
      // K=3 that is two cmovs per point). The scaled uniform is strictly
      // below the last threshold (an exact weight total) by construction, so
      // the sum always lands in [0, K).
      const double* prefix = q_prefix_.data();
      const double total = q_prefix_[num_classes - 1];
      for (uint64_t i = 0; i < total_n; ++i) {
        const double u = rng->NextDouble() * total;
        uint32_t k = 0;
        for (uint32_t c = 0; c + 1 < num_classes; ++c) {
          k += u >= prefix[c] ? 1u : 0u;
        }
        classes[i] = static_cast<uint8_t>(k);
        ++world_totals[k];
      }
      return;
    }
    uint64_t at = 0;
    for (uint32_t k = 0; k < num_classes; ++k) {
      for (uint64_t i = 0; i < class_totals_[k]; ++i) {
        classes[at++] = static_cast<uint8_t>(k);
      }
      world_totals[k] = class_totals_[k];
    }
    rng->Shuffle(classes, classes + total_n);
  }

  double MaxLlr(const uint64_t* const* counts_by_class,
                const uint64_t* world_totals, uint32_t num_classes,
                uint64_t total_n) const {
    const double null_term =
        WorldNullTerm(world_totals, num_classes, total_n, table_);
    double max_llr = 0.0;
    for (size_t r = 0; r < region_n_.size(); ++r) {
      const double llr =
          RegionLlrFromTable(counts_by_class, r, num_classes, region_n_[r],
                             total_n, world_totals, null_term, table_);
      if (llr > max_llr) max_llr = llr;
    }
    return max_llr;
  }

  const RegionFamily& family_;
  std::vector<uint64_t> class_totals_;
  std::vector<double> q_;
  std::vector<double> q_prefix_;
  MonteCarloOptions options_;
  stats::LogLikelihoodTable table_;
  std::vector<uint64_t> region_n_;
  const CellDecomposition* cells_;  // non-null => closed-form sampling
  Rng root_;
};

}  // namespace

MultinomialScanStatistic::MultinomialScanStatistic(
    std::vector<uint64_t> class_totals)
    : class_totals_(std::move(class_totals)) {
  for (uint64_t c : class_totals_) total_n_ += c;
  class_distribution_.resize(class_totals_.size());
  for (size_t k = 0; k < class_totals_.size(); ++k) {
    class_distribution_[k] =
        total_n_ == 0 ? 0.0
                      : static_cast<double>(class_totals_[k]) /
                            static_cast<double>(total_n_);
  }
}

Result<std::unique_ptr<MultinomialScanStatistic>>
MultinomialScanStatistic::FromOutcomes(const uint8_t* outcomes, size_t n,
                                       uint32_t num_classes) {
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 outcome classes");
  }
  if (num_classes > 256) {
    return Status::InvalidArgument("at most 256 outcome classes (uint8 ids)");
  }
  std::vector<uint64_t> totals(num_classes, 0);
  for (size_t i = 0; i < n; ++i) {
    if (outcomes[i] >= num_classes) {
      return Status::InvalidArgument(StrFormat(
          "class value %u outside [0, %u)", outcomes[i], num_classes));
    }
    ++totals[outcomes[i]];
  }
  return std::make_unique<MultinomialScanStatistic>(std::move(totals));
}

std::string MultinomialScanStatistic::Name() const {
  return StrFormat("multinomial scan statistic (K=%u)", num_classes());
}

std::string MultinomialScanStatistic::Fingerprint() const {
  std::string totals;
  for (size_t k = 0; k < class_totals_.size(); ++k) {
    if (k > 0) totals += ',';
    totals += StrFormat("%llu",
                        static_cast<unsigned long long>(class_totals_[k]));
  }
  return StrFormat("multinomial K=%u C=%s", num_classes(), totals.c_str());
}

Status MultinomialScanStatistic::ValidateOutcomes(const uint8_t* outcomes,
                                                  size_t n) const {
  if (n != total_n_) {
    return Status::InvalidArgument(
        StrFormat("outcome stream has %zu entries, statistic expects %llu",
                  n, static_cast<unsigned long long>(total_n_)));
  }
  std::vector<uint64_t> totals(class_totals_.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    if (outcomes[i] >= class_totals_.size()) {
      return Status::InvalidArgument(
          StrFormat("class value %u outside [0, %zu)", outcomes[i],
                    class_totals_.size()));
    }
    ++totals[outcomes[i]];
  }
  if (totals != class_totals_) {
    return Status::InvalidArgument(
        "outcome stream's class totals differ from the statistic's; build "
        "the statistic from this view (MakeScanStatistic)");
  }
  return Status::OK();
}

Status MultinomialScanStatistic::ValidateForFamily(
    const RegionFamily& family) const {
  if (class_totals_.size() < 2) {
    return Status::InvalidArgument("need at least 2 outcome classes");
  }
  if (family.num_points() != total_n_) {
    return Status::InvalidArgument(StrFormat(
        "region family is bound to %zu points but the statistic's view has "
        "%llu",
        family.num_points(), static_cast<unsigned long long>(total_n_)));
  }
  return Status::OK();
}

ScanResult MultinomialScanStatistic::ScanObserved(const RegionFamily& family,
                                                  const uint8_t* outcomes,
                                                  size_t n,
                                                  AuditScratch* scratch) const {
  SFA_CHECK(n == total_n_);
  const uint32_t num_classes = this->num_classes();
  const size_t num_regions = family.num_regions();
  const stats::LogLikelihoodTable& table = scratch->TableFor(n);

  // Per-class region counts in one pass: the outcome stream IS a packed
  // class-code world, so the native kernel counts all K−1 classes directly
  // (the last class stays derived from n(R)). The count buffer lives in the
  // scratch, so a pooled worker's steady state allocates nothing beyond the
  // result (class_ptrs is O(K)).
  const uint32_t counted = num_classes - 1;
  scratch->counts.resize(ClassCountBufferSize(1, counted, num_regions));
  family.CountClassesBatch(&outcomes, 1, num_classes, scratch->counts.data());
  std::vector<const uint64_t*> class_ptrs(counted);
  for (uint32_t k = 0; k < counted; ++k) {
    class_ptrs[k] =
        scratch->counts.data() + ClassCountRowOffset(0, k, counted, num_regions);
  }

  ScanResult result;
  result.total_n = n;
  result.total_p = 0;
  result.num_classes = num_classes;
  result.llr.resize(num_regions);
  result.class_counts.resize(num_regions * static_cast<size_t>(num_classes));
  const double null_term =
      WorldNullTerm(class_totals_.data(), num_classes, n, table);
  for (size_t r = 0; r < num_regions; ++r) {
    const uint64_t region_n = family.PointCount(r);
    uint64_t counted = 0;
    for (uint32_t k = 0; k + 1 < num_classes; ++k) {
      const uint64_t c = class_ptrs[k][r];
      result.class_counts[r * num_classes + k] = c;
      counted += c;
    }
    result.class_counts[r * num_classes + (num_classes - 1)] =
        region_n - counted;
    const double llr =
        RegionLlrFromTable(class_ptrs.data(), r, num_classes, region_n, n,
                           class_totals_.data(), null_term, table);
    result.llr[r] = llr;
    if (llr > result.max_llr) {
      result.max_llr = llr;
      result.argmax = r;
    }
  }
  return result;
}

std::unique_ptr<StatisticSimulation> MultinomialScanStatistic::MakeSimulation(
    const RegionFamily& family, const MonteCarloOptions& options) const {
  return std::make_unique<MultinomialSimulation>(family, class_totals_,
                                                 class_distribution_, options);
}

void MultinomialScanStatistic::FillFinding(const RegionFamily& family,
                                           const ScanResult& observed,
                                           size_t region,
                                           RegionFinding* finding) const {
  (void)family;
  const uint32_t num_classes = observed.num_classes;
  finding->class_counts.assign(
      observed.class_counts.begin() + region * num_classes,
      observed.class_counts.begin() + (region + 1) * num_classes);
  finding->n = 0;
  for (uint64_t c : finding->class_counts) finding->n += c;
  finding->p = 0;
  finding->local_rate = 0.0;
  // The SUL analog: log L1max(R) = Λ + maximized null log-likelihood.
  finding->log_sul =
      finding->llr + MultinomialNullLogLikelihood(class_totals_, total_n_);
}

}  // namespace sfa::core
