// Kulldorff-style variable-radius circular scan family: for each scan
// center, the regions are the sets of its k nearest observations for a
// ladder of k values (e.g. 0.5%, 1%, ..., up to a population ceiling). This
// is the classical region structure of SaTScan (Kulldorff 1997) — regions
// adapt their AREA to the local density so each holds a controlled share of
// the population, which the paper's fixed-side squares do not.
//
// Per center the ladder is nested by construction (the k nearest are a
// prefix of the (k+1) nearest), so the family supports both counting
// backends (core::CountingBackend):
//
//   kSparseAnnulus (default)  one kNN query per center; the nearest list is
//                             stored once as point-major CSR (point, rank)
//                             entries (core/annulus_index.h) and worlds are
//                             counted by scattering only positive points;
//   kDenseBits                one membership bit vector per region, each
//                             world costing one AND+popcount pass per region
//                             — the bit-identical reference.
//
// Duplicate ladder entries (fractions mapping to the same k) are collapsed
// at Create; the dedup is reported by Name().
#ifndef SFA_CORE_KNN_CIRCLE_FAMILY_H_
#define SFA_CORE_KNN_CIRCLE_FAMILY_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/annulus_index.h"
#include "core/region_family.h"
#include "geo/point.h"
#include "spatial/bitvector.h"

namespace sfa::core {

struct KnnCircleOptions {
  /// Scan centers (typically k-means centers or a sample of observations).
  std::vector<geo::Point> centers;
  /// Population ladder: each entry is a fraction of N; the region holds
  /// ceil(fraction * N) nearest observations. Entries in (0, max_fraction].
  std::vector<double> population_fractions = DefaultPopulationFractions();
  /// Counting backend; results are identical either way.
  CountingBackend backend = CountingBackend::kSparseAnnulus;

  /// SaTScan-like default ladder up to 10% of the population.
  static std::vector<double> DefaultPopulationFractions();
};

class KnnCircleFamily : public RegionFamily {
 public:
  static Result<std::unique_ptr<KnnCircleFamily>> Create(
      const std::vector<geo::Point>& points, const KnnCircleOptions& options);

  size_t num_regions() const override { return centers_.size() * ladder_.size(); }
  size_t num_points() const override { return num_points_; }
  RegionDescriptor Describe(size_t r) const override;
  uint64_t PointCount(size_t r) const override { return point_counts_[r]; }
  void CountPositives(const Labels& labels,
                      std::vector<uint64_t>* out) const override;
  /// Sparse backend: per-world positive scatter through the annulus CSR.
  /// Dense backend: word-blocked batch recounting, identical to
  /// SquareScanFamily.
  void CountPositivesBatch(const Labels* const* batch, size_t num_worlds,
                           uint64_t* out) const override;
  /// Multi-class counterpart, identical backend split to SquareScanFamily.
  void CountClassesBatch(const uint8_t* const* class_worlds, size_t num_worlds,
                         uint32_t num_classes, uint64_t* out) const override;
  std::string Name() const override;

  size_t num_centers() const { return centers_.size(); }
  size_t CenterOfRegion(size_t r) const { return r / ladder_.size(); }
  /// Radius (distance to the farthest member) of region `r`.
  double RadiusOfRegion(size_t r) const { return radii_[r]; }
  CountingBackend backend() const { return backend_; }
  /// Heap bytes of the active membership representation (CSR index or dense
  /// bit vectors).
  size_t MembershipBytes() const;

 private:
  KnnCircleFamily(const std::vector<geo::Point>& points,
                  std::vector<geo::Point> centers, std::vector<size_t> ladder,
                  size_t num_requested_fractions, CountingBackend backend);

  std::vector<geo::Point> centers_;
  std::vector<size_t> ladder_;  // k values, ascending, deduped
  size_t num_requested_fractions_ = 0;
  CountingBackend backend_ = CountingBackend::kSparseAnnulus;
  AnnulusIndex annulus_;                          // sparse backend
  std::vector<spatial::BitVector> memberships_;   // dense backend
  std::vector<uint64_t> point_counts_;
  std::vector<double> radii_;
  size_t num_points_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_KNN_CIRCLE_FAMILY_H_
