// One pass of the scan statistic over a region family: per-region Λ(R) and
// the maximum statistic τ = max_R Λ(R) (paper §3).
#ifndef SFA_CORE_SCAN_H_
#define SFA_CORE_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/labels.h"
#include "core/region_family.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {

/// Full per-region scan output (used for the observed world).
struct ScanResult {
  std::vector<double> llr;          ///< Λ(R) per region
  std::vector<uint64_t> positives;  ///< p(R) per region
  double max_llr = 0.0;             ///< τ
  size_t argmax = 0;                ///< R*
  uint64_t total_n = 0;             ///< N
  uint64_t total_p = 0;             ///< P
};

/// Evaluates Λ for every region of `family` under `labels`.
ScanResult ScanAllRegions(const RegionFamily& family, const Labels& labels,
                          stats::ScanDirection direction);

/// Max-only evaluation with caller-provided counting buffer (`scratch` is
/// resized as needed). The Monte Carlo engine (core/mc_engine.h) has its own
/// table-driven max-Λ path; this entry point remains for observed-world
/// one-offs, ablations, and tests.
double ScanMaxStatistic(const RegionFamily& family, const Labels& labels,
                        stats::ScanDirection direction,
                        std::vector<uint64_t>* scratch);

}  // namespace sfa::core

#endif  // SFA_CORE_SCAN_H_
