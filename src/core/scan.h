// One pass of the scan statistic over a region family: per-region Λ(R) and
// the maximum statistic τ = max_R Λ(R) (paper §3).
//
// Arithmetic contract: ScanAllRegions evaluates Λ through the same
// k·log k table (stats::LogLikelihoodTable) the Monte Carlo world engine
// uses, so an observed world and a simulated null world with identical
// counts produce bit-identical statistics. This matters for the rank
// p-value: exact ties between the observed max and null maxima must count
// toward #{null >= observed} (the conservative side); with mixed arithmetic
// (std::log observed vs table nulls) a tie can land an ulp on either side,
// which test_pvalue_calibration.cc showed as a small anti-conservative bias.
#ifndef SFA_CORE_SCAN_H_
#define SFA_CORE_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/labels.h"
#include "core/region_family.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {

/// Full per-region scan output (used for the observed world). Bernoulli
/// scans fill `positives`; multinomial scans fill `class_counts` instead and
/// leave the binary fields (`positives`, `total_p`) empty/zero.
struct ScanResult {
  std::vector<double> llr;          ///< Λ(R) per region
  std::vector<uint64_t> positives;  ///< p(R) per region (Bernoulli)
  double max_llr = 0.0;             ///< τ
  size_t argmax = 0;                ///< R*
  uint64_t total_n = 0;             ///< N
  uint64_t total_p = 0;             ///< P (Bernoulli)
  /// Per-region per-class counts, region-major [num_regions x num_classes]
  /// (multinomial; empty for Bernoulli).
  std::vector<uint64_t> class_counts;
  uint32_t num_classes = 0;  ///< columns of class_counts (0 for Bernoulli)
};

/// Evaluates Λ for every region of `family` under `labels`, through the
/// shared log-table (see the arithmetic contract above). The table overload
/// reuses a caller-held table (table.max_count() must equal labels.size());
/// the other builds one per call.
ScanResult ScanAllRegions(const RegionFamily& family, const Labels& labels,
                          stats::ScanDirection direction,
                          const stats::LogLikelihoodTable& table);
ScanResult ScanAllRegions(const RegionFamily& family, const Labels& labels,
                          stats::ScanDirection direction);

/// Max-only evaluation with caller-provided counting buffer (`scratch` is
/// resized as needed) and log-table. Bit-identical to
/// ScanAllRegions(...).max_llr for the same inputs.
double ScanMaxStatistic(const RegionFamily& family, const Labels& labels,
                        stats::ScanDirection direction,
                        std::vector<uint64_t>* scratch,
                        const stats::LogLikelihoodTable& table);

/// Max-only evaluation via direct std::log arithmetic — no table build, so
/// per-world loops over very large N (ablation harnesses) stay cheap. May
/// differ from the table paths by ~1 ulp; do not mix it with table-evaluated
/// statistics where exact tie semantics matter.
double ScanMaxStatistic(const RegionFamily& family, const Labels& labels,
                        stats::ScanDirection direction,
                        std::vector<uint64_t>* scratch);

}  // namespace sfa::core

#endif  // SFA_CORE_SCAN_H_
