#include "core/grid_family.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::core {

namespace {

geo::Rect SnugExtent(const std::vector<geo::Point>& points) {
  geo::Rect box = geo::Rect::BoundingBox(points);
  // Nudge the max edges outward so points on them fall inside half-open
  // cells; degenerate axes get a unit of slack.
  const double dx = box.width() > 0 ? box.width() * 1e-9 : 1.0;
  const double dy = box.height() > 0 ? box.height() * 1e-9 : 1.0;
  box.max_x += dx;
  box.max_y += dy;
  return box;
}

}  // namespace

GridPartitionFamily::GridPartitionFamily(const geo::GridSpec& grid,
                                         const std::vector<geo::Point>& points)
    : index_(grid, points) {
  cells_.cell_counts = index_.CountsPerCell();
  cells_.num_outside = index_.num_unassigned();
}

Result<std::unique_ptr<GridPartitionFamily>> GridPartitionFamily::Create(
    const std::vector<geo::Point>& points, uint32_t g_x, uint32_t g_y) {
  if (points.empty()) {
    return Status::InvalidArgument("grid family needs at least one point");
  }
  return CreateWithExtent(points, SnugExtent(points), g_x, g_y);
}

Result<std::unique_ptr<GridPartitionFamily>> GridPartitionFamily::CreateWithExtent(
    const std::vector<geo::Point>& points, const geo::Rect& extent, uint32_t g_x,
    uint32_t g_y) {
  SFA_ASSIGN_OR_RETURN(geo::GridSpec grid, geo::GridSpec::Create(extent, g_x, g_y));
  return std::unique_ptr<GridPartitionFamily>(
      new GridPartitionFamily(grid, points));
}

RegionDescriptor GridPartitionFamily::Describe(size_t r) const {
  SFA_DCHECK(r < num_regions());
  RegionDescriptor desc;
  desc.rect = grid().CellRectById(static_cast<uint32_t>(r));
  desc.label = StrFormat("cell(%u,%u)", static_cast<uint32_t>(r) % grid().nx(),
                         static_cast<uint32_t>(r) / grid().nx());
  desc.group = static_cast<uint32_t>(r);
  return desc;
}

void GridPartitionFamily::CountPositives(const Labels& labels,
                                         std::vector<uint64_t>* out) const {
  SFA_CHECK(out != nullptr);
  SFA_CHECK_MSG(labels.size() == num_points(),
                "labels " << labels.size() << " != points " << num_points());
  out->assign(num_regions(), 0);
  const std::vector<uint32_t>& cells = index_.cell_assignments();
  const std::vector<uint8_t>& bytes = labels.bytes();
  for (size_t i = 0; i < cells.size(); ++i) {
    const uint32_t cell = cells[i];
    if (cell != geo::GridSpec::kInvalidCell && bytes[i]) ++(*out)[cell];
  }
}

void GridPartitionFamily::CountPositivesBatch(const Labels* const* batch,
                                              size_t num_worlds,
                                              uint64_t* out) const {
  SFA_CHECK(batch != nullptr && out != nullptr);
  const std::vector<uint32_t>& cells = index_.cell_assignments();
  const size_t stride = num_regions();
  std::fill(out, out + num_worlds * stride, 0ULL);
  // The assignment array (the large stream) is read once for the whole
  // batch; per-world count rows stay cache-resident.
  std::vector<const uint8_t*> bytes(num_worlds);
  std::vector<uint64_t*> rows(num_worlds);
  for (size_t b = 0; b < num_worlds; ++b) {
    SFA_CHECK_MSG(batch[b]->size() == num_points(),
                  "labels " << batch[b]->size() << " != points " << num_points());
    bytes[b] = batch[b]->bytes().data();
    rows[b] = out + b * stride;
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    const uint32_t cell = cells[i];
    if (cell == geo::GridSpec::kInvalidCell) continue;
    for (size_t b = 0; b < num_worlds; ++b) {
      rows[b][cell] += bytes[b][i];
    }
  }
}

void GridPartitionFamily::CountClassesBatch(const uint8_t* const* class_worlds,
                                            size_t num_worlds,
                                            uint32_t num_classes,
                                            uint64_t* out) const {
  SFA_CHECK(class_worlds != nullptr && out != nullptr);
  SFA_CHECK_MSG(num_classes >= 2, "CountClassesBatch needs at least 2 classes");
  const std::vector<uint32_t>& cells = index_.cell_assignments();
  const uint32_t counted = num_classes - 1;
  const size_t stride = num_regions();
  std::fill(out, out + ClassCountBufferSize(num_worlds, counted, stride), 0ULL);
  // As in CountPositivesBatch, the assignment stream is read once for the
  // whole batch; each point lands in its class's histogram row (the derived
  // last class is skipped).
  std::vector<uint64_t*> bases(num_worlds);
  for (size_t w = 0; w < num_worlds; ++w) {
    bases[w] = out + ClassCountRowOffset(w, 0, counted, stride);
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    const uint32_t cell = cells[i];
    if (cell == geo::GridSpec::kInvalidCell) continue;
    for (size_t w = 0; w < num_worlds; ++w) {
      const uint8_t k = class_worlds[w][i];
      if (k < counted) ++bases[w][static_cast<size_t>(k) * stride + cell];
    }
  }
}

void GridPartitionFamily::CountPositivesFromCells(const uint32_t* cell_positives,
                                                  uint64_t* out) const {
  const size_t regions = num_regions();
  for (size_t r = 0; r < regions; ++r) out[r] = cell_positives[r];
}

std::string GridPartitionFamily::Name() const {
  return StrFormat("regular grid %ux%u over %zu points", grid().nx(), grid().ny(),
                   num_points());
}

}  // namespace sfa::core
