// The multinomial (K-class) scan statistic behind the pluggable
// ScanStatistic interface — the multi-class generalization the paper's
// Bernoulli test derives from (Jung, Kulldorff & Richard 2010; paper §2.3).
// Where the binary audit asks whether the rate of one outcome is independent
// of location, this audits whether the full outcome DISTRIBUTION (a
// classifier's predicted class mix, a recommender's category mix) is.
//
// Because it implements ScanStatistic, a multinomial audit inherits the
// entire performance and serving stack: any RegionFamily (not just grids),
// the batched Monte Carlo engine with closed-form per-cell multinomial
// sampling, CalibrationCache/CalibrationStore sharing, and the streaming
// Submit() path.
//
//   statistic      Λ(R) = Σ_k [c_k log(c_k/n) + d_k log(d_k/m)
//                              − C_k log(C_k/N)],
//                  with c/d/C the inside/outside/total class counts and
//                  0·log 0 := 0 — evaluated through the shared k·log k table
//                  (Σ_k t[c_k] − t[n] form) so observed-vs-null ties are
//                  exact, mirroring the Bernoulli arithmetic contract;
//   null worlds    classes redrawn i.i.d. from the global empirical
//                  distribution q (NullModel::kBernoulli — closed-form
//                  chained-binomial Multinomial(n_c, q) per cell for
//                  cell-decomposable families, per-point Categorical draws
//                  otherwise) or permuted exactly (kPermutation);
//   counting       per-class region counts reuse the family's binary
//                  counting paths: K−1 indicator label worlds per drawn
//                  world (the last class is derived from n(R)), batched
//                  through CountPositivesBatch;
//   identity       "multinomial K=<K> C=<c0,c1,...>" — the class totals are
//                  part of the calibration identity, so a multinomial
//                  calibration can never collide with a Bernoulli one.
#ifndef SFA_CORE_MULTINOMIAL_STATISTIC_H_
#define SFA_CORE_MULTINOMIAL_STATISTIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scan_statistic.h"

namespace sfa::core {

class MultinomialScanStatistic : public ScanStatistic {
 public:
  /// Statistic for a view whose class-k outcome appears class_totals[k]
  /// times; K = class_totals.size() >= 2, N = Σ class_totals.
  explicit MultinomialScanStatistic(std::vector<uint64_t> class_totals);

  /// Builds from the raw outcome stream: counts per-class totals and
  /// validates every value lies in [0, num_classes).
  static Result<std::unique_ptr<MultinomialScanStatistic>> FromOutcomes(
      const uint8_t* outcomes, size_t n, uint32_t num_classes);

  StatisticKind kind() const override { return StatisticKind::kMultinomial; }
  std::string Name() const override;
  std::string Fingerprint() const override;
  uint64_t total_n() const override { return total_n_; }
  uint32_t num_classes() const {
    return static_cast<uint32_t>(class_totals_.size());
  }
  const std::vector<uint64_t>& class_totals() const { return class_totals_; }

  Status ValidateOutcomes(const uint8_t* outcomes, size_t n) const override;
  Status ValidateForFamily(const RegionFamily& family) const override;
  ScanResult ScanObserved(const RegionFamily& family, const uint8_t* outcomes,
                          size_t n, AuditScratch* scratch) const override;
  std::unique_ptr<StatisticSimulation> MakeSimulation(
      const RegionFamily& family,
      const MonteCarloOptions& options) const override;
  void FillFinding(const RegionFamily& family, const ScanResult& observed,
                   size_t region, RegionFinding* finding) const override;
  std::vector<double> ClassDistribution() const override {
    return class_distribution_;
  }

 private:
  std::vector<uint64_t> class_totals_;
  std::vector<double> class_distribution_;  ///< q_k = C_k / N
  uint64_t total_n_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_MULTINOMIAL_STATISTIC_H_
