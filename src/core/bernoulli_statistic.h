// The Bernoulli (binary-outcome) scan statistic behind the pluggable
// ScanStatistic interface — the paper's spatial-fairness likelihood-ratio
// test (§3), re-seated from the original hardwired scan/engine path with its
// arithmetic and RNG streams preserved bit-for-bit:
//
//   observed scan    per-region Λ through the shared k·log k table
//                    (core/scan.h's ScanAllRegions — the exact-tie contract);
//   null worlds      closed-form per-cell Binomial(n_c, ρ) draws for
//                    cell-decomposable families, pooled label worlds +
//                    CountPositivesBatch otherwise, per-world RNG substreams
//                    Rng::Split(w) from options.seed (core/mc_engine.h's
//                    three cost levers, unchanged);
//   identity         "bernoulli dir=<direction> P=<positives>" — the view's
//                    positive count and the scan direction are part of the
//                    calibration identity; N and the family live in the
//                    calibration key proper.
//
// The golden-figure, determinism, and stat calibration suites pin this
// path's exact outputs across the refactor.
#ifndef SFA_CORE_BERNOULLI_STATISTIC_H_
#define SFA_CORE_BERNOULLI_STATISTIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/scan_statistic.h"

namespace sfa::core {

class BernoulliScanStatistic : public ScanStatistic {
 public:
  /// Statistic for a view with `total_n` individuals of which `total_p` are
  /// positive; the Bernoulli null rate is ρ = P/N.
  BernoulliScanStatistic(stats::ScanDirection direction, uint64_t total_n,
                         uint64_t total_p);

  /// Ablation variant with an explicit null rate decoupled from P/N (e.g.
  /// simulating at a hypothesized ρ). Not used by the audit/pipeline path,
  /// and `rho` is NOT part of Fingerprint() — do not key calibrations built
  /// this way unless rho == P/N.
  BernoulliScanStatistic(stats::ScanDirection direction, uint64_t total_n,
                         uint64_t total_p, double rho);

  StatisticKind kind() const override { return StatisticKind::kBernoulli; }
  std::string Name() const override;
  std::string Fingerprint() const override;
  uint64_t total_n() const override { return total_n_; }
  uint64_t total_p() const { return total_p_; }
  double rho() const { return rho_; }
  stats::ScanDirection direction() const { return direction_; }

  Status ValidateOutcomes(const uint8_t* outcomes, size_t n) const override;
  Status ValidateForFamily(const RegionFamily& family) const override;
  ScanResult ScanObserved(const RegionFamily& family, const uint8_t* outcomes,
                          size_t n, AuditScratch* scratch) const override;
  std::unique_ptr<StatisticSimulation> MakeSimulation(
      const RegionFamily& family,
      const MonteCarloOptions& options) const override;
  void FillFinding(const RegionFamily& family, const ScanResult& observed,
                   size_t region, RegionFinding* finding) const override;

 private:
  stats::ScanDirection direction_;
  uint64_t total_n_ = 0;
  uint64_t total_p_ = 0;
  double rho_ = 0.0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_BERNOULLI_STATISTIC_H_
