#include "core/annulus_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "core/region_family.h"

namespace sfa::core {

std::vector<uint32_t> CollapseEmptyAnnuli(size_t num_rungs,
                                          std::vector<AnnulusEntry>* entries) {
  SFA_CHECK(entries != nullptr && num_rungs >= 1);
  std::vector<uint64_t> occupancy(num_rungs, 0);
  for (const AnnulusEntry& e : *entries) {
    SFA_DCHECK(e.rank < num_rungs);
    ++occupancy[e.rank];
  }
  std::vector<uint32_t> kept;
  std::vector<uint32_t> remap(num_rungs, 0);
  for (size_t l = 0; l < num_rungs; ++l) {
    if (l == 0 || occupancy[l] > 0) {
      remap[l] = static_cast<uint32_t>(kept.size());
      kept.push_back(static_cast<uint32_t>(l));
    }
    // Dropped rungs have no entries, so their remap slot is never read.
  }
  if (kept.size() != num_rungs) {
    for (AnnulusEntry& e : *entries) e.rank = remap[e.rank];
  }
  return kept;
}

AnnulusIndex::AnnulusIndex(size_t num_points, size_t num_centers,
                           size_t num_rungs,
                           const std::vector<AnnulusEntry>& entries)
    : num_points_(num_points), num_centers_(num_centers), num_rungs_(num_rungs) {
  SFA_CHECK(num_centers >= 1 && num_rungs >= 1);
  SFA_CHECK_MSG(num_centers * num_rungs <=
                    std::numeric_limits<uint32_t>::max(),
                "region slots " << num_centers * num_rungs
                                << " exceed uint32 histogram addressing");
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(entries.size());
  for (const AnnulusEntry& e : entries) {
    SFA_DCHECK(e.point < num_points && e.center < num_centers &&
               e.rank < num_rungs);
    pairs.emplace_back(
        e.point, static_cast<uint32_t>(e.center * num_rungs + e.rank));
  }
  csr_ = spatial::BuildCsr32(num_points, pairs);

  // n(R): the all-positive world, via the same annulus histogram + prefix sum
  // the per-world counting path uses.
  region_point_counts_.assign(num_regions(), 0);
  std::vector<uint64_t> hist(num_regions(), 0);
  for (uint32_t slot : csr_.values) ++hist[slot];
  for (size_t c = 0; c < num_centers_; ++c) {
    uint64_t acc = 0;
    const size_t base = c * num_rungs_;
    for (size_t l = 0; l < num_rungs_; ++l) {
      acc += hist[base + l];
      region_point_counts_[base + l] = acc;
    }
  }
}

size_t AnnulusIndex::MemoryBytes() const {
  return csr_.MemoryBytes() + region_point_counts_.capacity() * sizeof(uint64_t);
}

void AnnulusIndex::CountPositives(const uint32_t* positives,
                                  size_t num_positives, uint32_t* hist,
                                  uint64_t* out) const {
  SFA_CHECK(hist != nullptr && out != nullptr);
  std::fill_n(hist, num_regions(), 0u);
  const uint32_t* offsets = csr_.offsets.data();
  const uint32_t* slots = csr_.values.data();
  for (size_t i = 0; i < num_positives; ++i) {
    const uint32_t p = positives[i];
    SFA_DCHECK(p < num_points_);
    const uint32_t end = offsets[p + 1];
    for (uint32_t j = offsets[p]; j < end; ++j) ++hist[slots[j]];
  }
  for (size_t c = 0; c < num_centers_; ++c) {
    uint64_t acc = 0;
    const size_t base = c * num_rungs_;
    for (size_t l = 0; l < num_rungs_; ++l) {
      acc += hist[base + l];
      out[base + l] = acc;
    }
  }
}

void AnnulusIndex::CountClasses(const uint8_t* classes,
                                uint32_t classes_counted, uint32_t* hist,
                                uint64_t* out) const {
  SFA_CHECK(classes != nullptr && hist != nullptr && out != nullptr);
  const size_t slots = num_regions();
  const uint32_t* offsets = csr_.offsets.data();
  const uint32_t* values = csr_.values.data();

  // The scatter may skip ONE class entirely and recover its row from the
  // exact integer identity h_skip(R) = n(R) − Σ_{k≠skip} h_k(R). Skipping the
  // MODAL class minimizes scattered points (for the last class the identity
  // is applied by the caller, so skipping it is free; for any other class the
  // derivation costs O(K x regions), trivially amortized at N >> regions).
  // The identity needs every point to carry a valid code, so one cheap O(N)
  // byte pass both finds the mode and screens for out-of-range codes; junk
  // codes (> classes_counted, which the K−1 indicator construction silently
  // drops) force the plain skip-the-last scatter.
  const uint32_t num_classes = classes_counted + 1;
  uint64_t freq[256] = {0};
  for (size_t p = 0; p < num_points_; ++p) ++freq[classes[p]];
  uint32_t skip = classes_counted;  // default: derived-last semantics
  bool junk = false;
  for (uint32_t k = 0; k < 256; ++k) {
    if (k < num_classes) {
      // Ties prefer the last class: its skip needs no derivation pass.
      if (freq[k] > freq[skip]) skip = k;
    } else if (freq[k] != 0) {
      junk = true;
    }
  }
  if (junk) skip = classes_counted;

  // Scatter every class but `skip` into an injective slice mapping
  // s(k) = k − (k > skip): when skip == classes_counted this is the identity
  // over the counted classes; otherwise class classes_counted borrows the
  // freed slice so the scratch footprint never grows.
  std::fill_n(hist, static_cast<size_t>(classes_counted) * slots, 0u);
  for (size_t p = 0; p < num_points_; ++p) {
    const uint8_t k = classes[p];
    if (k == skip || k >= num_classes) continue;
    const uint32_t s = k - (k > skip ? 1u : 0u);
    uint32_t* slice = hist + static_cast<size_t>(s) * slots;
    const uint32_t end = offsets[p + 1];
    for (uint32_t j = offsets[p]; j < end; ++j) ++slice[values[j]];
  }

  // Cumulate each scattered class into its output row (annulus slots are
  // per-rung increments; regions are their per-center prefix sums).
  for (uint32_t k = 0; k < classes_counted; ++k) {
    if (k == skip) continue;
    const uint32_t* slice = hist + static_cast<size_t>(k - (k > skip)) * slots;
    uint64_t* row = out + static_cast<size_t>(k) * slots;
    for (size_t c = 0; c < num_centers_; ++c) {
      uint64_t acc = 0;
      const size_t base = c * num_rungs_;
      for (size_t l = 0; l < num_rungs_; ++l) {
        acc += slice[base + l];
        row[base + l] = acc;
      }
    }
  }
  if (skip >= classes_counted) return;

  // Derive the skipped modal row: n(R) minus every other class, where class
  // classes_counted's cumulative counts come from its borrowed slice.
  const uint64_t* n = region_point_counts_.data();
  const uint32_t* last_slice =
      hist + static_cast<size_t>(classes_counted - 1) * slots;
  uint64_t* modal_row = out + static_cast<size_t>(skip) * slots;
  for (size_t c = 0; c < num_centers_; ++c) {
    uint64_t acc = 0;
    const size_t base = c * num_rungs_;
    for (size_t l = 0; l < num_rungs_; ++l) {
      acc += last_slice[base + l];
      modal_row[base + l] = n[base + l] - acc;
    }
  }
  for (uint32_t k = 0; k < classes_counted; ++k) {
    if (k == skip) continue;
    const uint64_t* row = out + static_cast<size_t>(k) * slots;
    for (size_t r = 0; r < slots; ++r) modal_row[r] -= row[r];
  }
}

std::vector<uint32_t>& LocalAnnulusHistogram() {
  static thread_local std::vector<uint32_t> hist;
  return hist;
}

void CountPositivesWithAnnulus(const AnnulusIndex& index, const Labels& labels,
                               uint64_t* out) {
  SFA_CHECK(out != nullptr);
  std::vector<uint32_t>& hist = LocalAnnulusHistogram();
  hist.resize(index.num_regions());
  const std::vector<uint32_t>& positives = labels.positive_indices();
  index.CountPositives(positives.data(), positives.size(), hist.data(), out);
}

void CountPositivesBatchWithAnnulus(const AnnulusIndex& index,
                                    size_t num_points,
                                    const Labels* const* batch,
                                    size_t num_worlds, uint64_t* out) {
  SFA_CHECK(batch != nullptr && out != nullptr);
  const size_t stride = index.num_regions();
  std::vector<uint32_t>& hist = LocalAnnulusHistogram();
  hist.resize(stride);
  for (size_t b = 0; b < num_worlds; ++b) {
    SFA_CHECK_MSG(batch[b]->size() == num_points,
                  "labels " << batch[b]->size() << " != points " << num_points);
    const std::vector<uint32_t>& positives = batch[b]->positive_indices();
    index.CountPositives(positives.data(), positives.size(), hist.data(),
                         out + b * stride);
  }
}

void CountClassesBatchWithAnnulus(const AnnulusIndex& index,
                                  const uint8_t* const* class_worlds,
                                  size_t num_worlds, uint32_t num_classes,
                                  uint64_t* out) {
  SFA_CHECK(class_worlds != nullptr && out != nullptr);
  SFA_CHECK_MSG(num_classes >= 2,
                "CountClassesBatchWithAnnulus needs at least 2 classes");
  const uint32_t counted = num_classes - 1;
  const size_t stride = index.num_regions();
  std::vector<uint32_t>& hist = LocalAnnulusHistogram();
  hist.resize(static_cast<size_t>(counted) * stride);
  for (size_t w = 0; w < num_worlds; ++w) {
    index.CountClasses(class_worlds[w], counted, hist.data(),
                       out + ClassCountRowOffset(w, 0, counted, stride));
  }
}

}  // namespace sfa::core
