#include "core/annulus_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace sfa::core {

std::vector<uint32_t> CollapseEmptyAnnuli(size_t num_rungs,
                                          std::vector<AnnulusEntry>* entries) {
  SFA_CHECK(entries != nullptr && num_rungs >= 1);
  std::vector<uint64_t> occupancy(num_rungs, 0);
  for (const AnnulusEntry& e : *entries) {
    SFA_DCHECK(e.rank < num_rungs);
    ++occupancy[e.rank];
  }
  std::vector<uint32_t> kept;
  std::vector<uint32_t> remap(num_rungs, 0);
  for (size_t l = 0; l < num_rungs; ++l) {
    if (l == 0 || occupancy[l] > 0) {
      remap[l] = static_cast<uint32_t>(kept.size());
      kept.push_back(static_cast<uint32_t>(l));
    }
    // Dropped rungs have no entries, so their remap slot is never read.
  }
  if (kept.size() != num_rungs) {
    for (AnnulusEntry& e : *entries) e.rank = remap[e.rank];
  }
  return kept;
}

AnnulusIndex::AnnulusIndex(size_t num_points, size_t num_centers,
                           size_t num_rungs,
                           const std::vector<AnnulusEntry>& entries)
    : num_points_(num_points), num_centers_(num_centers), num_rungs_(num_rungs) {
  SFA_CHECK(num_centers >= 1 && num_rungs >= 1);
  SFA_CHECK_MSG(num_centers * num_rungs <=
                    std::numeric_limits<uint32_t>::max(),
                "region slots " << num_centers * num_rungs
                                << " exceed uint32 histogram addressing");
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(entries.size());
  for (const AnnulusEntry& e : entries) {
    SFA_DCHECK(e.point < num_points && e.center < num_centers &&
               e.rank < num_rungs);
    pairs.emplace_back(
        e.point, static_cast<uint32_t>(e.center * num_rungs + e.rank));
  }
  csr_ = spatial::BuildCsr32(num_points, pairs);

  // n(R): the all-positive world, via the same annulus histogram + prefix sum
  // the per-world counting path uses.
  region_point_counts_.assign(num_regions(), 0);
  std::vector<uint64_t> hist(num_regions(), 0);
  for (uint32_t slot : csr_.values) ++hist[slot];
  for (size_t c = 0; c < num_centers_; ++c) {
    uint64_t acc = 0;
    const size_t base = c * num_rungs_;
    for (size_t l = 0; l < num_rungs_; ++l) {
      acc += hist[base + l];
      region_point_counts_[base + l] = acc;
    }
  }
}

size_t AnnulusIndex::MemoryBytes() const {
  return csr_.MemoryBytes() + region_point_counts_.capacity() * sizeof(uint64_t);
}

void AnnulusIndex::CountPositives(const uint32_t* positives,
                                  size_t num_positives, uint32_t* hist,
                                  uint64_t* out) const {
  SFA_CHECK(hist != nullptr && out != nullptr);
  std::fill_n(hist, num_regions(), 0u);
  const uint32_t* offsets = csr_.offsets.data();
  const uint32_t* slots = csr_.values.data();
  for (size_t i = 0; i < num_positives; ++i) {
    const uint32_t p = positives[i];
    SFA_DCHECK(p < num_points_);
    const uint32_t end = offsets[p + 1];
    for (uint32_t j = offsets[p]; j < end; ++j) ++hist[slots[j]];
  }
  for (size_t c = 0; c < num_centers_; ++c) {
    uint64_t acc = 0;
    const size_t base = c * num_rungs_;
    for (size_t l = 0; l < num_rungs_; ++l) {
      acc += hist[base + l];
      out[base + l] = acc;
    }
  }
}

std::vector<uint32_t>& LocalAnnulusHistogram() {
  static thread_local std::vector<uint32_t> hist;
  return hist;
}

void CountPositivesWithAnnulus(const AnnulusIndex& index, const Labels& labels,
                               uint64_t* out) {
  SFA_CHECK(out != nullptr);
  std::vector<uint32_t>& hist = LocalAnnulusHistogram();
  hist.resize(index.num_regions());
  const std::vector<uint32_t>& positives = labels.positive_indices();
  index.CountPositives(positives.data(), positives.size(), hist.data(), out);
}

void CountPositivesBatchWithAnnulus(const AnnulusIndex& index,
                                    size_t num_points,
                                    const Labels* const* batch,
                                    size_t num_worlds, uint64_t* out) {
  SFA_CHECK(batch != nullptr && out != nullptr);
  const size_t stride = index.num_regions();
  std::vector<uint32_t>& hist = LocalAnnulusHistogram();
  hist.resize(stride);
  for (size_t b = 0; b < num_worlds; ++b) {
    SFA_CHECK_MSG(batch[b]->size() == num_points,
                  "labels " << batch[b]->size() << " != points " << num_points);
    const std::vector<uint32_t>& positives = batch[b]->positive_indices();
    index.CountPositives(positives.data(), positives.size(), hist.data(),
                         out + b * stride);
  }
}

}  // namespace sfa::core
