// The MeanVar partitioning-based unfairness measure of Xie et al. (AAAI
// 2022), as characterized and critiqued in the paper (§1, §2.2, §4.2): given
// a set of rectangular partitionings, compute for each partitioning the
// variance of the per-partition measure (positive rate over non-empty
// partitions) and report the mean variance across partitionings. Lower
// values are read as "fairer".
//
// The per-partition *contribution* — its squared deviation from the
// partitioning mean, normalized by the partition count and the number of
// partitionings — ranks the "suspicious" regions the baseline would point
// at; the paper shows these are dominated by sparse, extreme-rate partitions
// (Figures 2-4, 9).
#ifndef SFA_CORE_MEANVAR_H_
#define SFA_CORE_MEANVAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "geo/partitioning.h"

namespace sfa::core {

struct MeanVarOptions {
  /// Partitions with no observations are skipped (they have no measure).
  /// Kept as an option for ablations of the baseline's behaviour.
  bool skip_empty_partitions = true;
};

/// A partition scored by its contribution to MeanVar.
struct PartitionContribution {
  size_t partitioning_index = 0;
  uint32_t partition_id = 0;
  geo::Rect rect;
  uint64_t n = 0;            ///< observations inside
  uint64_t p = 0;            ///< positives inside
  double measure = 0.0;      ///< local positive rate
  double deviation = 0.0;    ///< measure - partitioning mean
  double contribution = 0.0; ///< share of MeanVar caused by this partition
};

struct MeanVarResult {
  double mean_var = 0.0;
  std::vector<double> per_partitioning_variance;
  /// All non-empty partitions ranked by contribution, descending.
  std::vector<PartitionContribution> ranked_partitions;
};

/// Evaluates MeanVar for `dataset` over `partitionings`.
Result<MeanVarResult> ComputeMeanVar(const data::OutcomeDataset& dataset,
                                     const std::vector<geo::Partitioning>& partitionings,
                                     const MeanVarOptions& options = {});

}  // namespace sfa::core

#endif  // SFA_CORE_MEANVAR_H_
