#include "core/measure.h"

#include "common/macros.h"

namespace sfa::core {

const char* FairnessMeasureToString(FairnessMeasure m) {
  switch (m) {
    case FairnessMeasure::kStatisticalParity:
      return "statistical parity (positive rate)";
    case FairnessMeasure::kEqualOpportunity:
      return "equal opportunity (true positive rate)";
    case FairnessMeasure::kPredictiveEquality:
      return "predictive equality (false positive rate)";
  }
  return "?";
}

Result<data::OutcomeDataset> BuildMeasureView(const data::OutcomeDataset& dataset,
                                              FairnessMeasure measure) {
  SFA_RETURN_NOT_OK(dataset.Validate());
  switch (measure) {
    case FairnessMeasure::kStatisticalParity:
      return dataset;
    case FairnessMeasure::kEqualOpportunity: {
      SFA_ASSIGN_OR_RETURN(data::OutcomeDataset view, dataset.FilterByActual(1));
      if (view.empty()) {
        return Status::FailedPrecondition(
            "equal opportunity view is empty: no Y=1 individuals");
      }
      return view;
    }
    case FairnessMeasure::kPredictiveEquality: {
      SFA_ASSIGN_OR_RETURN(data::OutcomeDataset view, dataset.FilterByActual(0));
      if (view.empty()) {
        return Status::FailedPrecondition(
            "predictive equality view is empty: no Y=0 individuals");
      }
      return view;
    }
  }
  return Status::InvalidArgument("unknown fairness measure");
}

}  // namespace sfa::core
