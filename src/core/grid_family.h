// Region family whose regions are the cells of one regular grid — the
// setting of the paper's Figures 3 (100x50), 4 (20x20), and 9 (25x12).
#ifndef SFA_CORE_GRID_FAMILY_H_
#define SFA_CORE_GRID_FAMILY_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/region_family.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "spatial/grid_index.h"

namespace sfa::core {

class GridPartitionFamily : public RegionFamily {
 public:
  /// Builds the family over `points` with a g_x x g_y grid covering their
  /// bounding box (expanded by a hair so max-edge points stay inside).
  static Result<std::unique_ptr<GridPartitionFamily>> Create(
      const std::vector<geo::Point>& points, uint32_t g_x, uint32_t g_y);

  /// Same, over an explicit extent.
  static Result<std::unique_ptr<GridPartitionFamily>> CreateWithExtent(
      const std::vector<geo::Point>& points, const geo::Rect& extent, uint32_t g_x,
      uint32_t g_y);

  size_t num_regions() const override { return index_.grid().num_cells(); }
  size_t num_points() const override { return index_.num_points(); }
  RegionDescriptor Describe(size_t r) const override;
  uint64_t PointCount(size_t r) const override {
    return cells_.cell_counts[r];
  }
  void CountPositives(const Labels& labels,
                      std::vector<uint64_t>* out) const override;
  /// One pass over cell assignments counts all worlds of the batch.
  void CountPositivesBatch(const Labels* const* batch, size_t num_worlds,
                           uint64_t* out) const override;
  /// Same single pass, scattering each point into its class histogram — all K
  /// classes of all worlds without per-class indicator materialization.
  void CountClassesBatch(const uint8_t* const* class_worlds, size_t num_worlds,
                         uint32_t num_classes, uint64_t* out) const override;
  /// Regions ARE the cells: the decomposition is exact, enabling closed-form
  /// Binomial null sampling in O(cells) per world.
  const CellDecomposition* cell_decomposition() const override { return &cells_; }
  void CountPositivesFromCells(const uint32_t* cell_positives,
                               uint64_t* out) const override;
  std::string Name() const override;

  const geo::GridSpec& grid() const { return index_.grid(); }
  const spatial::GridIndex& index() const { return index_; }

 private:
  GridPartitionFamily(const geo::GridSpec& grid,
                      const std::vector<geo::Point>& points);

  spatial::GridIndex index_;
  CellDecomposition cells_;
};

}  // namespace sfa::core

#endif  // SFA_CORE_GRID_FAMILY_H_
