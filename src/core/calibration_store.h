// Persistent, versioned on-disk store of null calibrations, so Monte Carlo
// calibration survives the process: a pipeline warm-started from a store
// directory skips every simulation a previous process already paid for and
// still produces byte-identical AuditResponses (doubles round-trip exactly
// through the binary format; keys content-hash every draw-relevant input, so
// a loaded NullDistribution IS the one a fresh simulation would produce).
//
// Layout: one file per calibration under the store directory, named by the
// key's content hash plus a hash of its debug rendering (CalibrationKey
// equality compares both, so hash-colliding keys get distinct files). Each
// file is a self-verifying binary frame:
//
//   magic "SFANULLD" | u32 version | u64 key hash | u32 debug len | debug
//   bytes | u64 world count | f64 sorted maxima (descending) | u64 FNV-1a
//   checksum of everything before it
//
// Writes are crash-safe: the frame is written to a dot-temp file in the same
// directory and atomically renamed into place, so readers (including
// concurrent pipelines sharing the directory) only ever observe absent or
// complete files; concurrent writers of the same key race benignly (their
// bytes are identical). Loads are corruption-tolerant by contract: ANY
// defect — short file, bad magic, foreign version, checksum or key mismatch
// — surfaces as NotFound, which callers (CalibrationCache read-through)
// treat as a miss and recompute; a corrupt file can therefore never poison a
// result, only cost a simulation.
//
// Failure semantics (this layer is the serving stack's disk boundary):
//   * Transient write failures are retried with bounded exponential backoff
//     and seeded jitter (reproducible wait sequences). Only IOError is
//     considered transient; any other code fails the Store immediately.
//   * A frame that fails Load validation is moved into a `quarantine/`
//     subdirectory (counted in stats().quarantined) so the defective bytes
//     are kept for forensics but never re-parsed on every subsequent load —
//     after quarantine the key is a clean miss.
//   * A circuit breaker opens after `breaker_failure_threshold` consecutive
//     Store failures (post-retry), e.g. a full disk. While open, Store
//     fast-fails with ResourceExhausted and Load fast-fails with NotFound —
//     the cache's miss→recompute contract turns that into memory-only
//     serving with zero caller changes. After `breaker_probe_after_ms` one
//     Store attempt is let through as a probe; success closes the breaker,
//     failure re-arms the probe timer.
//
// Fault drills inject at the `store.load`, `store.write`, `store.rename` and
// `store.evict` failpoints (common/failpoint.h); `store.write` accepts
// truncate/corrupt actions to simulate torn writes that land on disk.
#ifndef SFA_CORE_CALIBRATION_STORE_H_
#define SFA_CORE_CALIBRATION_STORE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "core/calibration_cache.h"
#include "core/significance.h"

namespace sfa::core {

class CalibrationStore {
 public:
  /// Bumped whenever the frame layout OR the keyspace semantics change;
  /// loaders reject every other version (forward AND backward) as NotFound
  /// so mixed-version fleets sharing a directory degrade to recompute, never
  /// to misparse. v1 → v2: calibration keys embed the ScanStatistic
  /// fingerprint (core/scan_statistic.h), so v1 frames — keyed without a
  /// statistic identity — must never be adopted by a statistic-aware reader.
  static constexpr uint32_t kFormatVersion = 2;

  struct Options {
    std::string directory;
    /// Create the directory (and parents) on Open when absent.
    bool create_if_missing = true;
    /// Size budget for eviction sweeps (total bytes of calibration frames);
    /// 0 = unbounded. Enforced by EvictToBudget and the startup sweep — not
    /// continuously on writes.
    uint64_t max_bytes = 0;
    /// Run EvictToBudget(max_bytes) during Open, so a long-lived directory
    /// no longer grows without bound across process generations. A no-op
    /// when max_bytes == 0 (unbounded) — an explicit EvictToBudget(0) call
    /// is the only way to clear everything.
    bool sweep_on_open = false;
    /// Extra write attempts after a transient (IOError) Store failure.
    uint32_t store_retries = 2;
    /// Backoff before retry k (1-based) is
    /// min(backoff_max_ms, backoff_initial_ms * 2^(k-1)) scaled by a jitter
    /// factor in [0.5, 1) drawn from a stream seeded with backoff_seed —
    /// deterministic wait sequences, no cross-process thundering herd.
    double backoff_initial_ms = 0.5;
    double backoff_max_ms = 8.0;
    uint64_t backoff_seed = 0x5FAB0FFULL;
    /// Move frames that fail Load validation into `<directory>/quarantine/`
    /// instead of leaving them in place to be re-parsed (and re-rejected)
    /// forever. Disable only for forensic setups that want rejects in situ.
    bool quarantine_rejects = true;
    /// Consecutive post-retry Store failures that open the circuit breaker;
    /// 0 disables the breaker entirely.
    uint32_t breaker_failure_threshold = 3;
    /// While the breaker is open, one Store is admitted as a probe after
    /// this many milliseconds (and again after every failed probe).
    double breaker_probe_after_ms = 250.0;
  };

  /// Cumulative counters (monotone over the store's lifetime; thread-safe).
  struct Stats {
    uint64_t load_hits = 0;      ///< loads that returned a calibration
    uint64_t load_misses = 0;    ///< loads with no file for the key
    uint64_t load_rejected = 0;  ///< loads with a file that failed validation
    uint64_t stores = 0;         ///< successful writes
    uint64_t store_failures = 0; ///< Store calls that failed after retries
    uint64_t store_retries = 0;  ///< individual write attempts retried
    uint64_t evicted_files = 0;  ///< frames deleted by eviction sweeps
    uint64_t evicted_bytes = 0;  ///< bytes reclaimed by eviction sweeps
    uint64_t quarantined = 0;    ///< rejected frames moved to quarantine/
    uint64_t breaker_trips = 0;      ///< closed→open transitions
    uint64_t breaker_fast_fails = 0; ///< Store/Load calls bounced while open
    bool breaker_open = false;       ///< snapshot, not a counter
  };

  /// Opens (and optionally creates) a store directory.
  static Result<std::unique_ptr<CalibrationStore>> Open(const Options& options);

  const std::string& directory() const { return options_.directory; }

  /// Loads the calibration persisted for `key`. NotFound when the key has no
  /// file OR its file fails any validation (truncation, corruption, version
  /// or key mismatch; the defective frame is quarantined) OR the circuit
  /// breaker is open — the caller recomputes either way. IOError only for
  /// filesystem-level read failures of an existing file.
  Result<NullDistribution> Load(const CalibrationKey& key) const;

  /// Persists `distribution` for `key` (atomic rename; replaces any previous
  /// frame for the key). Transient IOError failures are retried per the
  /// backoff options; with the breaker open, fails ResourceExhausted without
  /// touching the disk (except for the periodic probe attempt).
  Status Store(const CalibrationKey& key,
               const NullDistribution& distribution) const;

  /// The quarantine directory defective frames are moved into.
  std::string QuarantineDir() const;

  /// The file a key maps to (exposed for tests and manifests).
  std::string FilePathFor(const CalibrationKey& key) const;

  /// Size-capped LRU sweep: deletes calibration frames — least-recently-used
  /// first, judged by filesystem mtime (Store writes and Load hits both
  /// refresh it), ties broken by name for determinism — until the total
  /// bytes of `.nulldist` files is <= budget_bytes. Concurrent-writer safe:
  /// a frame evicted while another process still wants it costs that process
  /// one recompute (the cache's NotFound→recompute contract), never a wrong
  /// result. Returns the number of files deleted.
  Result<uint64_t> EvictToBudget(uint64_t budget_bytes) const;

  Stats stats() const;

 private:
  explicit CalibrationStore(Options options)
      : options_(std::move(options)), backoff_rng_(options_.backoff_seed) {}

  /// One frame-build + temp-write + rename attempt (no retry, no breaker).
  Status WriteFrameOnce(const CalibrationKey& key,
                        const NullDistribution& distribution) const;
  /// Best-effort move of a rejected frame into quarantine/. Returns true
  /// when the file actually moved (caller counts it).
  bool QuarantineFrame(const std::string& path) const;

  Options options_;
  mutable std::mutex mu_;  ///< guards stats_, breaker state, rng, temp counter
  mutable Stats stats_;
  mutable uint64_t temp_counter_ = 0;
  mutable Rng backoff_rng_;

  // Circuit breaker state (guarded by mu_).
  mutable bool breaker_open_ = false;
  mutable bool breaker_probing_ = false;  ///< one probe in flight
  mutable uint32_t consecutive_store_failures_ = 0;
  mutable std::chrono::steady_clock::time_point breaker_probe_at_{};
};

}  // namespace sfa::core

#endif  // SFA_CORE_CALIBRATION_STORE_H_
