// Persistent, versioned on-disk store of null calibrations, so Monte Carlo
// calibration survives the process: a pipeline warm-started from a store
// directory skips every simulation a previous process already paid for and
// still produces byte-identical AuditResponses (doubles round-trip exactly
// through the binary format; keys content-hash every draw-relevant input, so
// a loaded NullDistribution IS the one a fresh simulation would produce).
//
// Layout: one file per calibration under the store directory, named by the
// key's content hash plus a hash of its debug rendering (CalibrationKey
// equality compares both, so hash-colliding keys get distinct files). Each
// file is a self-verifying binary frame:
//
//   magic "SFANULLD" | u32 version | u64 key hash | u32 debug len | debug
//   bytes | zero pad to 8-align what follows | u64 world count | f64 sorted
//   maxima (descending) | u64 worlds requested | u32 stop reason | u64
//   FNV-1a checksum of everything before it
//
// The pad places the maxima array on an 8-byte boundary, so the zero-copy
// warm path (LoadView) can serve a span straight out of an mmap'd frame.
//
// Writes are crash-safe: the frame is written to a dot-temp file in the same
// directory and atomically renamed into place, so readers (including
// concurrent pipelines sharing the directory) only ever observe absent or
// complete files; concurrent writers of the same key race benignly (their
// bytes are identical). Loads are corruption-tolerant by contract: ANY
// defect — short file, bad magic, foreign version, checksum or key mismatch
// — surfaces as NotFound, which callers (CalibrationCache read-through)
// treat as a miss and recompute; a corrupt file can therefore never poison a
// result, only cost a simulation.
//
// Failure semantics (this layer is the serving stack's disk boundary):
//   * Transient write failures are retried with bounded exponential backoff
//     and seeded jitter (reproducible wait sequences). Only IOError is
//     considered transient; any other code fails the Store immediately.
//   * A frame that fails Load validation is moved into a `quarantine/`
//     subdirectory (counted in stats().quarantined) so the defective bytes
//     are kept for forensics but never re-parsed on every subsequent load —
//     after quarantine the key is a clean miss.
//   * A circuit breaker opens after `breaker_failure_threshold` consecutive
//     Store failures (post-retry), e.g. a full disk. While open, Store
//     fast-fails with ResourceExhausted and Load fast-fails with NotFound —
//     the cache's miss→recompute contract turns that into memory-only
//     serving with zero caller changes. After `breaker_probe_after_ms` one
//     Store attempt is let through as a probe; success closes the breaker,
//     failure re-arms the probe timer.
//
// Fault drills inject at the `store.load`, `store.write`, `store.rename` and
// `store.evict` failpoints (common/failpoint.h); `store.write` accepts
// truncate/corrupt actions to simulate torn writes that land on disk.
//
// Multi-process fabric (opt-in via Options::lease_ttl_ms > 0): N processes
// sharing one directory coordinate through per-key lease files under
// `leases/` (common/lease.h) so a key is simulated by at most one process at
// a time, and every Open runs a RecoverySweep that reaps `.tmp.*` frames
// orphaned by killed writers, reclaims stale leases, and bounds quarantine/
// by bytes — so a kill -9 anywhere costs at most one recompute, never a torn
// frame or leaked disk.
#ifndef SFA_CORE_CALIBRATION_STORE_H_
#define SFA_CORE_CALIBRATION_STORE_H_

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "common/lease.h"
#include "common/mmap_file.h"
#include "common/random.h"
#include "common/status.h"
#include "core/calibration_cache.h"
#include "core/significance.h"

namespace sfa::core {

class CalibrationStore {
 public:
  /// Bumped whenever the frame layout OR the keyspace semantics change;
  /// loaders reject every other version (forward AND backward) as NotFound
  /// so mixed-version fleets sharing a directory degrade to recompute, never
  /// to misparse. v1 → v2: calibration keys embed the ScanStatistic
  /// fingerprint (core/scan_statistic.h), so v1 frames — keyed without a
  /// statistic identity — must never be adopted by a statistic-aware reader.
  /// v2 → v3: frames append the adaptive-stop metadata (worlds_requested +
  /// stop reason) after the maxima, so an early-stopped calibration
  /// round-trips as early-stopped instead of masquerading as a full run of
  /// its truncated length. v3 → v4: zero padding between the key debug bytes
  /// and the world count aligns the maxima array to 8 bytes, so the
  /// zero-copy mmap path can serve a `std::span<const double>` straight out
  /// of the mapping without ever forming a misaligned pointer.
  static constexpr uint32_t kFormatVersion = 4;

  struct Options {
    std::string directory;
    /// Create the directory (and parents) on Open when absent.
    bool create_if_missing = true;
    /// Size budget for eviction sweeps (total bytes of calibration frames);
    /// 0 = unbounded. Enforced by EvictToBudget and the startup sweep — not
    /// continuously on writes.
    uint64_t max_bytes = 0;
    /// Run EvictToBudget(max_bytes) during Open, so a long-lived directory
    /// no longer grows without bound across process generations. A no-op
    /// when max_bytes == 0 (unbounded) — an explicit EvictToBudget(0) call
    /// is the only way to clear everything.
    bool sweep_on_open = false;
    /// Extra write attempts after a transient (IOError) Store failure.
    uint32_t store_retries = 2;
    /// Backoff before retry k (1-based) is
    /// min(backoff_max_ms, backoff_initial_ms * 2^(k-1)) scaled by a jitter
    /// factor in [0.5, 1) drawn from a stream seeded with backoff_seed —
    /// deterministic wait sequences, no cross-process thundering herd.
    double backoff_initial_ms = 0.5;
    double backoff_max_ms = 8.0;
    uint64_t backoff_seed = 0x5FAB0FFULL;
    /// Move frames that fail Load validation into `<directory>/quarantine/`
    /// instead of leaving them in place to be re-parsed (and re-rejected)
    /// forever. Disable only for forensic setups that want rejects in situ.
    bool quarantine_rejects = true;
    /// Consecutive post-retry Store failures that open the circuit breaker;
    /// 0 disables the breaker entirely.
    uint32_t breaker_failure_threshold = 3;
    /// While the breaker is open, one Store is admitted as a probe after
    /// this many milliseconds (and again after every failed probe).
    double breaker_probe_after_ms = 250.0;
    /// Byte budget for `quarantine/`, enforced oldest-first by RecoverySweep
    /// and EvictToBudget; 0 = unbounded (the pre-fabric behavior, where
    /// rejected frames accumulate forever).
    uint64_t quarantine_max_bytes = 0;
    /// Grace window for in-flight writer temps: a `.tmp.*` file is reaped by
    /// RecoverySweep/EvictToBudget when its embedded writer pid is dead, or
    /// when it is older than this many milliseconds (<= 0 disables the age
    /// arm; dead-writer reaping always applies). The default comfortably
    /// exceeds any legitimate write-temp lifetime (microseconds).
    double temp_reap_grace_ms = 60'000.0;
    /// Cross-process singleflight: TTL after which a per-key lease file with
    /// no heartbeats counts as stale and may be taken over. 0 disables
    /// leases entirely — single-process deployments keep the in-process
    /// singleflight and write-behind exactly as before.
    double lease_ttl_ms = 0.0;
    /// Minimum interval between lease heartbeat mtime touches; calls more
    /// frequent than this (e.g. per MC batch boundary) are free no-ops.
    double lease_heartbeat_interval_ms = 100.0;
    /// How long a non-owner sleeps between store re-checks while a live
    /// foreign process holds the key's lease.
    double lease_wait_poll_ms = 5.0;
    /// Serve LoadView hits as zero-copy views over an mmap'd frame (one
    /// validation per mapped generation, no heap copy). Also gated by the
    /// `SFA_STORE_MMAP=0` environment escape hatch, checked at Open; when
    /// either disables mmap, LoadView degrades to the copy path (Load),
    /// which stays bit-identical.
    bool use_mmap = true;
  };

  /// Cumulative counters (monotone over the store's lifetime; thread-safe).
  struct Stats {
    uint64_t load_hits = 0;      ///< loads that returned a calibration
    uint64_t load_misses = 0;    ///< loads with no file for the key
    uint64_t load_rejected = 0;  ///< loads with a file that failed validation
    uint64_t stores = 0;         ///< successful writes
    uint64_t store_failures = 0; ///< Store calls that failed after retries
    uint64_t store_retries = 0;  ///< individual write attempts retried
    uint64_t evicted_files = 0;  ///< frames deleted by eviction sweeps
    uint64_t evicted_bytes = 0;  ///< bytes reclaimed by eviction sweeps
    uint64_t quarantined = 0;    ///< rejected frames moved to quarantine/
    uint64_t breaker_trips = 0;      ///< closed→open transitions
    uint64_t breaker_fast_fails = 0; ///< Store/Load calls bounced while open
    uint64_t temps_reaped = 0;       ///< orphaned .tmp.* writer files deleted
    uint64_t leases_reclaimed = 0;   ///< stale lease files/tombstones swept
    uint64_t quarantine_evicted_files = 0;  ///< quarantine/ byte-budget GC
    uint64_t quarantine_evicted_bytes = 0;
    uint64_t leases_acquired = 0;    ///< TryAcquireLease calls that won
    uint64_t lease_takeovers = 0;    ///< wins that reclaimed a stale holder
    uint64_t lease_contention = 0;   ///< attempts that saw a live foreign holder
    uint64_t index_hits = 0;     ///< warm hits answered by the in-memory index
    uint64_t mmap_loads = 0;     ///< LoadView hits served from a mapping
    uint64_t remap_races = 0;    ///< mapped frames remapped after a foreign rewrite
    uint64_t touch_failures = 0; ///< LRU mtime touches that failed (read-only fs)
    bool breaker_open = false;       ///< snapshot, not a counter
    uint64_t mmap_frames = 0;        ///< gauge: live mappings held by the index
    uint64_t mmap_bytes = 0;         ///< gauge: bytes of those mappings
  };

  /// Opens (and optionally creates) a store directory.
  static Result<std::unique_ptr<CalibrationStore>> Open(const Options& options);

  const std::string& directory() const { return options_.directory; }

  /// Loads the calibration persisted for `key`. NotFound when the key has no
  /// file OR its file fails any validation (truncation, corruption, version
  /// or key mismatch; the defective frame is quarantined) OR the circuit
  /// breaker is open — the caller recomputes either way. IOError only for
  /// filesystem-level read failures of an existing file.
  Result<NullDistribution> Load(const CalibrationKey& key) const;

  /// Zero-copy warm path: like Load, but a hit is served as a
  /// NullDistributionView over an mmap'd read-only frame. The frame is
  /// validated (magic/version/checksum/key/sortedness) ONCE per mapped
  /// generation; subsequent hits cost one stat (foreign-writer detection via
  /// the index's size/mtime/generation signature) and zero copies. Eviction
  /// and re-Store are safe against outstanding views: POSIX keeps unlinked
  /// pages alive until the last view drops, and a signature change triggers
  /// a remap (counted in stats().remap_races) so new hits see the new
  /// generation. When mmap is disabled (Options::use_mmap == false or
  /// SFA_STORE_MMAP=0) or the mapping fails (`store.mmap` failpoint, exotic
  /// filesystems), degrades to the copy path with identical results.
  Result<NullDistributionView> LoadView(const CalibrationKey& key) const;

  /// Whether LoadView actually serves mmap'd views (option AND env gate).
  bool mmap_enabled() const { return mmap_enabled_; }

  /// Persists `distribution` for `key` (atomic rename; replaces any previous
  /// frame for the key). Transient IOError failures are retried per the
  /// backoff options; with the breaker open, fails ResourceExhausted without
  /// touching the disk (except for the periodic probe attempt).
  Status Store(const CalibrationKey& key,
               const NullDistribution& distribution) const;

  /// The quarantine directory defective frames are moved into.
  std::string QuarantineDir() const;

  /// The file a key maps to (exposed for tests and manifests).
  std::string FilePathFor(const CalibrationKey& key) const;

  /// Size-capped LRU sweep: deletes calibration frames — least-recently-used
  /// first, judged by filesystem mtime (Store writes and Load hits both
  /// refresh it), ties broken by name for determinism — until the total
  /// bytes of `.nulldist` files is <= budget_bytes. Concurrent-writer safe:
  /// a frame evicted while another process still wants it costs that process
  /// one recompute (the cache's NotFound→recompute contract), never a wrong
  /// result. Returns the number of files deleted.
  Result<uint64_t> EvictToBudget(uint64_t budget_bytes) const;

  /// Crash-recovery sweep, run by Open on every start and callable any time:
  /// reaps orphaned writer temps (dead pid or past the grace window),
  /// reclaims stale leases and abandoned takeover tombstones under leases/,
  /// and GCs quarantine/ oldest-first to its byte budget. Everything is
  /// best-effort and concurrent-sweeper safe (losing a removal race just
  /// means the peer counted it); results land in stats().
  void RecoverySweep() const;

  /// Whether the cross-process lease protocol is enabled for this store.
  bool leases_enabled() const { return options_.lease_ttl_ms > 0.0; }

  /// One non-blocking attempt to become the cross-process owner for `key`.
  /// On success the outcome carries the lease (heartbeat at batch
  /// boundaries, Release when the frame is persisted); when a live foreign
  /// process holds it, outcome.lease is null and the caller should poll the
  /// store (options().lease_wait_poll_ms) for the holder's frame. Requires
  /// leases_enabled().
  Result<FileLease::AcquireOutcome> TryAcquireLease(
      const CalibrationKey& key) const;

  /// The directory lease files live in (`<directory>/leases`).
  std::string LeaseDir() const;

  /// The lease file a key maps to (same stem as FilePathFor).
  std::string LeasePathFor(const CalibrationKey& key) const;

  const Options& options() const { return options_; }

  Stats stats() const;

 private:
  explicit CalibrationStore(Options options);

  /// A validated mmap'd frame: the mapping plus spans/metadata parsed out of
  /// it. Handed to readers behind a shared_ptr (aliased as the
  /// NullDistributionView's backing), so eviction/replacement in the index
  /// never invalidates an outstanding view.
  struct MappedFrame {
    MmapFile file;
    std::span<const double> maxima;  // points into file, sorted descending
    uint64_t worlds_requested = 0;
    McStopReason stop_reason = McStopReason::kNone;
  };

  /// Per-frame in-memory index entry (keyed by frame filename). The
  /// (size, mtime, generation) triple is the warm-hit signature: one stat
  /// per hit detects foreign-process rewrites, and the locally-bumped
  /// generation guards the ABA case of a rewrite landing within the mtime
  /// granularity.
  struct IndexEntry {
    uint64_t size = 0;
    std::filesystem::file_time_type mtime{};
    uint64_t generation = 0;
    bool validated = false;  ///< frame passed full validation this process
    /// In-memory recency fallback: set when the LRU mtime touch fails
    /// (read-only directory); EvictToBudget orders by max(mtime, last_used).
    /// min() = "never" (the default-constructed file_time_type is NOT a safe
    /// sentinel — libstdc++'s file clock epoch is in the future).
    std::filesystem::file_time_type last_used =
        std::filesystem::file_time_type::min();
    std::shared_ptr<const MappedFrame> mapped;  ///< null on the copy path
  };

  /// One frame-build + temp-write + rename attempt (no retry, no breaker).
  Status WriteFrameOnce(const CalibrationKey& key,
                        const NullDistribution& distribution) const;
  /// Best-effort move of a rejected frame into quarantine/. Returns true
  /// when the file actually moved (caller counts it).
  bool QuarantineFrame(const std::string& path) const;
  /// Deletes `.tmp.*` files whose writer died or whose age exceeds the grace
  /// window; counts into stats().temps_reaped.
  void SweepOrphanTemps() const;
  /// Oldest-first GC of quarantine/ down to quarantine_max_bytes (no-op when
  /// the budget is 0); counts into stats().quarantine_evicted_*.
  void EnforceQuarantineBudget() const;

  /// Best-effort LRU recency bump for a just-served frame: touch the file
  /// mtime; on failure (read-only directory/filesystem) degrade to the
  /// index's in-memory last_used and count stats().touch_failures — never
  /// retry on the hit path.
  void TouchForLru(const std::string& path) const;

  /// Drops `filename` from the index (releasing its mapping gauge-wise);
  /// outstanding views keep their pages via their shared backing.
  void ForgetIndexEntryLocked(const std::string& filename) const;

  /// Seeds the index with the directory's frames at Open (signatures only,
  /// validated = false — the first load of each frame still validates it).
  void BuildIndex() const;

  /// A view whose backing aliases `frame`, pinning the mapping.
  static NullDistributionView ViewOf(
      const std::shared_ptr<const MappedFrame>& frame);

  Options options_;
  bool mmap_enabled_ = true;  ///< options_.use_mmap AND env SFA_STORE_MMAP!=0
  mutable std::mutex mu_;  ///< guards stats_, breaker state, rng, temp
                           ///< counter, and index_
  mutable Stats stats_;
  mutable std::unordered_map<std::string, IndexEntry> index_;
  mutable uint64_t temp_counter_ = 0;
  mutable Rng backoff_rng_;

  // Circuit breaker state (guarded by mu_).
  mutable bool breaker_open_ = false;
  mutable bool breaker_probing_ = false;  ///< one probe in flight
  mutable uint32_t consecutive_store_failures_ = 0;
  mutable std::chrono::steady_clock::time_point breaker_probe_at_{};
};

}  // namespace sfa::core

#endif  // SFA_CORE_CALIBRATION_STORE_H_
