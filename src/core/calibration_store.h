// Persistent, versioned on-disk store of null calibrations, so Monte Carlo
// calibration survives the process: a pipeline warm-started from a store
// directory skips every simulation a previous process already paid for and
// still produces byte-identical AuditResponses (doubles round-trip exactly
// through the binary format; keys content-hash every draw-relevant input, so
// a loaded NullDistribution IS the one a fresh simulation would produce).
//
// Layout: one file per calibration under the store directory, named by the
// key's content hash plus a hash of its debug rendering (CalibrationKey
// equality compares both, so hash-colliding keys get distinct files). Each
// file is a self-verifying binary frame:
//
//   magic "SFANULLD" | u32 version | u64 key hash | u32 debug len | debug
//   bytes | u64 world count | f64 sorted maxima (descending) | u64 FNV-1a
//   checksum of everything before it
//
// Writes are crash-safe: the frame is written to a dot-temp file in the same
// directory and atomically renamed into place, so readers (including
// concurrent pipelines sharing the directory) only ever observe absent or
// complete files; concurrent writers of the same key race benignly (their
// bytes are identical). Loads are corruption-tolerant by contract: ANY
// defect — short file, bad magic, foreign version, checksum or key mismatch
// — surfaces as NotFound, which callers (CalibrationCache read-through)
// treat as a miss and recompute; a corrupt file can therefore never poison a
// result, only cost a simulation.
#ifndef SFA_CORE_CALIBRATION_STORE_H_
#define SFA_CORE_CALIBRATION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/calibration_cache.h"
#include "core/significance.h"

namespace sfa::core {

class CalibrationStore {
 public:
  /// Bumped whenever the frame layout changes; loaders reject every other
  /// version (forward AND backward) as NotFound so mixed-version fleets
  /// sharing a directory degrade to recompute, never to misparse.
  static constexpr uint32_t kFormatVersion = 1;

  struct Options {
    std::string directory;
    /// Create the directory (and parents) on Open when absent.
    bool create_if_missing = true;
  };

  /// Cumulative counters (monotone over the store's lifetime; thread-safe).
  struct Stats {
    uint64_t load_hits = 0;      ///< loads that returned a calibration
    uint64_t load_misses = 0;    ///< loads with no file for the key
    uint64_t load_rejected = 0;  ///< loads with a file that failed validation
    uint64_t stores = 0;         ///< successful writes
    uint64_t store_failures = 0; ///< writes that returned an error
  };

  /// Opens (and optionally creates) a store directory.
  static Result<std::unique_ptr<CalibrationStore>> Open(const Options& options);

  const std::string& directory() const { return options_.directory; }

  /// Loads the calibration persisted for `key`. NotFound when the key has no
  /// file OR its file fails any validation (truncation, corruption, version
  /// or key mismatch) — the caller recomputes either way. IOError only for
  /// filesystem-level read failures of an existing file.
  Result<NullDistribution> Load(const CalibrationKey& key) const;

  /// Persists `distribution` for `key` (atomic rename; replaces any previous
  /// frame for the key).
  Status Store(const CalibrationKey& key,
               const NullDistribution& distribution) const;

  /// The file a key maps to (exposed for tests and manifests).
  std::string FilePathFor(const CalibrationKey& key) const;

  Stats stats() const;

 private:
  explicit CalibrationStore(Options options) : options_(std::move(options)) {}

  Options options_;
  mutable std::mutex mu_;  ///< guards stats_ and the temp-name counter
  mutable Stats stats_;
  mutable uint64_t temp_counter_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_CALIBRATION_STORE_H_
