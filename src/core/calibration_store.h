// Persistent, versioned on-disk store of null calibrations, so Monte Carlo
// calibration survives the process: a pipeline warm-started from a store
// directory skips every simulation a previous process already paid for and
// still produces byte-identical AuditResponses (doubles round-trip exactly
// through the binary format; keys content-hash every draw-relevant input, so
// a loaded NullDistribution IS the one a fresh simulation would produce).
//
// Layout: one file per calibration under the store directory, named by the
// key's content hash plus a hash of its debug rendering (CalibrationKey
// equality compares both, so hash-colliding keys get distinct files). Each
// file is a self-verifying binary frame:
//
//   magic "SFANULLD" | u32 version | u64 key hash | u32 debug len | debug
//   bytes | u64 world count | f64 sorted maxima (descending) | u64 FNV-1a
//   checksum of everything before it
//
// Writes are crash-safe: the frame is written to a dot-temp file in the same
// directory and atomically renamed into place, so readers (including
// concurrent pipelines sharing the directory) only ever observe absent or
// complete files; concurrent writers of the same key race benignly (their
// bytes are identical). Loads are corruption-tolerant by contract: ANY
// defect — short file, bad magic, foreign version, checksum or key mismatch
// — surfaces as NotFound, which callers (CalibrationCache read-through)
// treat as a miss and recompute; a corrupt file can therefore never poison a
// result, only cost a simulation.
#ifndef SFA_CORE_CALIBRATION_STORE_H_
#define SFA_CORE_CALIBRATION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/calibration_cache.h"
#include "core/significance.h"

namespace sfa::core {

class CalibrationStore {
 public:
  /// Bumped whenever the frame layout OR the keyspace semantics change;
  /// loaders reject every other version (forward AND backward) as NotFound
  /// so mixed-version fleets sharing a directory degrade to recompute, never
  /// to misparse. v1 → v2: calibration keys embed the ScanStatistic
  /// fingerprint (core/scan_statistic.h), so v1 frames — keyed without a
  /// statistic identity — must never be adopted by a statistic-aware reader.
  static constexpr uint32_t kFormatVersion = 2;

  struct Options {
    std::string directory;
    /// Create the directory (and parents) on Open when absent.
    bool create_if_missing = true;
    /// Size budget for eviction sweeps (total bytes of calibration frames);
    /// 0 = unbounded. Enforced by EvictToBudget and the startup sweep — not
    /// continuously on writes.
    uint64_t max_bytes = 0;
    /// Run EvictToBudget(max_bytes) during Open, so a long-lived directory
    /// no longer grows without bound across process generations. A no-op
    /// when max_bytes == 0 (unbounded) — an explicit EvictToBudget(0) call
    /// is the only way to clear everything.
    bool sweep_on_open = false;
  };

  /// Cumulative counters (monotone over the store's lifetime; thread-safe).
  struct Stats {
    uint64_t load_hits = 0;      ///< loads that returned a calibration
    uint64_t load_misses = 0;    ///< loads with no file for the key
    uint64_t load_rejected = 0;  ///< loads with a file that failed validation
    uint64_t stores = 0;         ///< successful writes
    uint64_t store_failures = 0; ///< writes that returned an error
    uint64_t evicted_files = 0;  ///< frames deleted by eviction sweeps
    uint64_t evicted_bytes = 0;  ///< bytes reclaimed by eviction sweeps
  };

  /// Opens (and optionally creates) a store directory.
  static Result<std::unique_ptr<CalibrationStore>> Open(const Options& options);

  const std::string& directory() const { return options_.directory; }

  /// Loads the calibration persisted for `key`. NotFound when the key has no
  /// file OR its file fails any validation (truncation, corruption, version
  /// or key mismatch) — the caller recomputes either way. IOError only for
  /// filesystem-level read failures of an existing file.
  Result<NullDistribution> Load(const CalibrationKey& key) const;

  /// Persists `distribution` for `key` (atomic rename; replaces any previous
  /// frame for the key).
  Status Store(const CalibrationKey& key,
               const NullDistribution& distribution) const;

  /// The file a key maps to (exposed for tests and manifests).
  std::string FilePathFor(const CalibrationKey& key) const;

  /// Size-capped LRU sweep: deletes calibration frames — least-recently-used
  /// first, judged by filesystem mtime (Store writes and Load hits both
  /// refresh it), ties broken by name for determinism — until the total
  /// bytes of `.nulldist` files is <= budget_bytes. Concurrent-writer safe:
  /// a frame evicted while another process still wants it costs that process
  /// one recompute (the cache's NotFound→recompute contract), never a wrong
  /// result. Returns the number of files deleted.
  Result<uint64_t> EvictToBudget(uint64_t budget_bytes) const;

  Stats stats() const;

 private:
  explicit CalibrationStore(Options options) : options_(std::move(options)) {}

  Options options_;
  mutable std::mutex mu_;  ///< guards stats_ and the temp-name counter
  mutable Stats stats_;
  mutable uint64_t temp_counter_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_CALIBRATION_STORE_H_
