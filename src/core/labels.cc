#include "core/labels.h"

#include <numeric>

#include "common/macros.h"

namespace sfa::core {

Labels Labels::FromBytes(std::vector<uint8_t> bytes) {
  Labels out;
  out.bits_ = spatial::BitVector(bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    SFA_DCHECK(bytes[i] <= 1);
    if (bytes[i]) {
      out.bits_.Set(i);
      ++out.positive_count_;
    }
  }
  out.bytes_ = std::move(bytes);
  return out;
}

Labels Labels::SampleBernoulli(size_t n, double rho, Rng* rng) {
  SFA_CHECK(rng != nullptr);
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) bytes[i] = rng->Bernoulli(rho) ? 1 : 0;
  return FromBytes(std::move(bytes));
}

Labels Labels::SamplePermutation(size_t n, uint64_t positives, Rng* rng) {
  SFA_CHECK(rng != nullptr);
  SFA_CHECK_MSG(positives <= n, "more positives than points");
  // Partial Fisher-Yates over point indices: the first `positives` slots of
  // the shuffled order receive label 1.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<uint8_t> bytes(n, 0);
  for (uint64_t i = 0; i < positives; ++i) {
    const uint64_t j = i + rng->NextUint64(n - i);
    std::swap(order[i], order[j]);
    bytes[order[i]] = 1;
  }
  return FromBytes(std::move(bytes));
}

}  // namespace sfa::core
