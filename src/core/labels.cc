#include "core/labels.h"

#include <numeric>

#include "common/macros.h"

namespace sfa::core {

namespace {

/// Shared validate-and-count pass over a 0/1 byte span.
uint64_t CountPositiveBytes(const uint8_t* bytes, size_t n) {
  uint64_t positives = 0;
  for (size_t i = 0; i < n; ++i) {
    SFA_DCHECK(bytes[i] <= 1);
    positives += bytes[i];
  }
  return positives;
}

}  // namespace

Labels Labels::FromBytes(std::vector<uint8_t> bytes) {
  Labels out;
  out.positive_count_ = CountPositiveBytes(bytes.data(), bytes.size());
  out.bytes_ = std::move(bytes);
  return out;
}

void Labels::AssignBytes(const uint8_t* bytes, size_t n) {
  bytes_.assign(bytes, bytes + n);
  bits_valid_ = false;
  positives_valid_ = false;
  positive_count_ = CountPositiveBytes(bytes_.data(), n);
}

Labels Labels::SampleBernoulli(size_t n, double rho, Rng* rng) {
  Labels out;
  out.ResampleBernoulli(n, rho, rng);
  return out;
}

Labels Labels::SamplePermutation(size_t n, uint64_t positives, Rng* rng) {
  Labels out;
  out.ResamplePermutation(n, positives, rng);
  return out;
}

void Labels::ResampleBernoulli(size_t n, double rho, Rng* rng) {
  SFA_CHECK(rng != nullptr);
  bytes_.resize(n);
  bits_valid_ = false;
  positives_valid_ = false;
  uint64_t positives = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t b = rng->Bernoulli(rho) ? 1 : 0;
    bytes_[i] = b;
    positives += b;
  }
  positive_count_ = positives;
}

void Labels::ResamplePermutation(size_t n, uint64_t positives, Rng* rng,
                                 std::vector<uint32_t>* order_scratch) {
  SFA_CHECK(rng != nullptr);
  SFA_CHECK_MSG(positives <= n, "more positives than points");
  bits_valid_ = false;
  positives_valid_ = false;
  // Partial Fisher-Yates over point indices: the first `positives` slots of
  // the shuffled order receive label 1.
  std::vector<uint32_t> local_order;
  std::vector<uint32_t>& order = order_scratch ? *order_scratch : local_order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  bytes_.assign(n, 0);
  for (uint64_t i = 0; i < positives; ++i) {
    const uint64_t j = i + rng->NextUint64(n - i);
    std::swap(order[i], order[j]);
    bytes_[order[i]] = 1;
  }
  positive_count_ = positives;
}

void Labels::BuildBits() const {
  bits_.AssignFromBytes(bytes_.data(), bytes_.size());
  bits_valid_ = true;
}

void Labels::BuildPositiveIndices() const {
  positive_indices_.clear();
  positive_indices_.reserve(positive_count_);
  for (size_t i = 0; i < bytes_.size(); ++i) {
    if (bytes_[i]) positive_indices_.push_back(static_cast<uint32_t>(i));
  }
  positives_valid_ = true;
}

}  // namespace sfa::core
