// Monte Carlo calibration of the scan statistic (paper §3): simulate W-1
// alternate worlds that keep every individual's location but redraw labels
// under spatial fairness, record each world's max statistic, and read off
// p-values and per-region critical values from the resulting null
// distribution of max Λ.
#ifndef SFA_CORE_SIGNIFICANCE_H_
#define SFA_CORE_SIGNIFICANCE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/region_family.h"
#include "stats/bernoulli_scan.h"

namespace sfa {
class CancellationToken;  // common/thread_pool.h
}

namespace sfa::core {

enum class NullModel {
  /// Each label is an independent Bernoulli(ρ) trial — the paper's variant.
  kBernoulli,
  /// Exactly P positives permuted over locations (Kulldorff's conditional
  /// null). Provided for ablation; slightly tighter for small N.
  kPermutation,
};

const char* NullModelToString(NullModel model);

/// Execution strategy of the world engine. Both strategies produce
/// bit-identical NullDistributions for the same options (per-world RNG
/// substreams + shared log-table LLR); kReference exists as the semantic
/// baseline and for A/B benchmarking.
enum class McEngine {
  /// Worlds in batches of batch_size through CountPositivesBatch, all
  /// per-world buffers pooled in thread-local arenas (the default).
  kBatched,
  /// One world at a time, fresh buffers, scalar CountPositives.
  kReference,
};

const char* McEngineToString(McEngine engine);

/// How a p-value (and the advisory critical value) is derived from the
/// simulated null distribution.
enum class SignificanceMethod : uint8_t {
  /// The exact Monte Carlo rank p-value only (the paper's k/w formulation).
  /// Resolution is hard-capped at 1/(num_worlds+1).
  kEmpirical = 0,
  /// The Gumbel tail fit to the simulated maxima (Abrams/Kulldorff/Kleinman
  /// 2010), when the fit passes the KS quality gate; degrades to empirical
  /// otherwise. Smooth far-tail p-values, approximate everywhere.
  kGumbelTail = 1,
  /// Empirical while the observed statistic is inside the simulated range;
  /// the gated Gumbel tail only when it exceeds every simulated maximum —
  /// exactly where the empirical p-value saturates at 1/(num_worlds+1).
  kAuto = 2,
};

const char* SignificanceMethodToString(SignificanceMethod method);

/// Why an adaptive sequential Monte Carlo run stopped before simulating all
/// requested worlds. kNone means no adaptive stop (full run, or an
/// error/deadline stop reported through Status instead).
enum class McStopReason : uint8_t {
  kNone = 0,
  /// The CI on the running p-value lies entirely below alpha: the observed
  /// statistic is settled significant; more worlds cannot change the verdict.
  kCiBelowAlpha = 1,
  /// The CI lies entirely above alpha: settled not significant.
  kCiAboveAlpha = 2,
};

const char* McStopReasonToString(McStopReason reason);

/// Sequential early-stopping configuration of the Monte Carlo engine. At
/// every `check_every`-world boundary the engine computes a Wilson CI (at
/// `z` standard normal units) on the exceedance probability of `observed`
/// against the worlds simulated so far, and stops as soon as the CI lies
/// entirely on one side of `alpha` AND the running rank p-value agrees with
/// that side (so a served prefix p-value never contradicts the stop verdict).
///
/// Unlike the execution-only stop controls below, every field here is
/// DECISION-RELEVANT: it changes how many worlds the calibration contains,
/// hence the calibration value itself. All fields are therefore hashed into
/// calibration keys when `enabled` (core/calibration_cache.cc), so an
/// early-stopped calibration can never alias a full-precision one — a
/// request with adaptive disabled recomputes rather than silently adopting
/// a shortened null. Note the key consequence: `observed` and `alpha` are
/// request-specific, so adaptive calibrations do not share across an
/// alpha-sweep the way full calibrations do; enable adaptive when keys are
/// cold-unique, keep it off to maximize cache sharing.
struct AdaptiveMcOptions {
  bool enabled = false;
  /// The observed max statistic whose p-value is being decided. The audit
  /// pipeline and Auditor fill this from the observed scan; direct
  /// SimulateNull callers set it themselves.
  double observed = 0.0;
  /// The decision level the CI is tested against (the audit's alpha).
  double alpha = 0.05;
  /// Never stop before this many worlds (stabilizes the normal
  /// approximation behind the Wilson interval).
  uint32_t min_worlds = 64;
  /// Worlds per sequential chunk between CI checks. Unlike batch_size this
  /// IS decision-relevant: it sets where a stop can land.
  uint32_t check_every = 64;
  /// Wilson interval half-width in standard normal units. 3.2905 is the
  /// two-sided 99.9% quantile: stops are wrong (would disagree with the
  /// full run's verdict) with probability ~1e-3 per decided calibration.
  double z = 3.2905;
};

struct MonteCarloOptions {
  /// Number of simulated worlds (W-1 in the paper's notation; the observed
  /// world makes it W). 999 gives p-value resolution 0.001.
  uint32_t num_worlds = 999;
  NullModel null_model = NullModel::kBernoulli;
  uint64_t seed = 99;
  /// Worlds are simulated on the default thread pool when true; results are
  /// identical either way (per-world substreams).
  bool parallel = true;
  McEngine engine = McEngine::kBatched;
  /// Worlds per batch in the kBatched engine. Affects performance only,
  /// never results — for every family counting backend (partition/closed-form
  /// cells, overlapping sparse-annulus scatter, dense bit vectors; see
  /// core::CountingBackend) counts are exact integers, so batch boundaries
  /// cannot shift the null distribution.
  uint32_t batch_size = 8;
  /// When the family exposes a cell decomposition (grid, rectangle sweep,
  /// single partitioning) and the null is Bernoulli, draw per-cell positives
  /// directly as independent Binomial(n_c, ρ) — O(cells) per world instead of
  /// O(N) point labeling. Distributionally identical to point-level sampling
  /// (the per-cell counts of i.i.d. Bernoulli labels ARE independent
  /// binomials) but consumes a different RNG stream, so disable it to
  /// reproduce point-level draws world-by-world.
  bool closed_form_cells = true;

  /// Sequential early stopping (decision-relevant; see AdaptiveMcOptions).
  AdaptiveMcOptions adaptive;

  // --- Execution-only cooperative stop controls -----------------------------
  // Consulted between world batches, and ONLY when the caller passes a
  // McRunOutcome (core/mc_engine.h) — a run that cannot report partial
  // progress is never stopped early, so it can never silently return (or
  // cache) a short null distribution. These fields are intentionally absent
  // from calibration keys (core/calibration_cache.cc): they change when a
  // simulation stops, never what it computes.

  /// Sticky cooperative cancel, polled at batch boundaries. Not owned.
  const CancellationToken* cancel = nullptr;
  /// Liveness callback fired at every world-batch boundary regardless of
  /// stoppability (callee rate-limits). The calibration fabric wires this to
  /// the key's lease heartbeat (core/calibration_cache.h ComputeContext) so
  /// a long simulation keeps its cross-process lease fresh. Execution-only:
  /// absent from calibration keys, never affects drawn values.
  std::function<void()> heartbeat;
  /// Absolute deadline; epoch-zero (the default) means none. Worlds whose
  /// batch starts before the deadline still run to completion — the engine
  /// stops before batches, never inside one.
  std::chrono::steady_clock::time_point deadline{};
};

/// Default KS-distance bound of the Gumbel tail-fit quality gate: the fit
/// is trusted only when its CDF tracks the empirical maxima within this
/// distance over the checkable range. 0.1 comfortably admits the
/// near-Gumbel maxima of real scan nulls (KS ~ 1.4/sqrt(W) ≈ 0.04 at
/// W = 999 when the family is Gumbel) while rejecting point-massed or
/// otherwise degenerate nulls (tiny families whose worlds mostly scan to
/// one value), whose KS distance against any continuous fit approaches the
/// mass of the largest atom.
inline constexpr double kDefaultTailKsGate = 0.1;

/// Gumbel tail fit of a null distribution plus its quality-gate verdict.
struct TailFit {
  /// The method-of-moments fit succeeded (>= 2 worlds, non-constant maxima).
  bool fitted = false;
  /// fitted AND ks_distance <= the gate: the tail extrapolation is usable.
  bool ok = false;
  /// KS distance of the fitted CDF against the empirical maxima (1 when the
  /// fit failed outright).
  double ks_distance = 1.0;
  double mu = 0.0;    ///< Gumbel location (when fitted)
  double beta = 0.0;  ///< Gumbel scale (when fitted)
};

/// One resolved p-value: the estimate plus which method actually produced
/// it. `method` is always kEmpirical or kGumbelTail — the concrete method
/// used, never kAuto.
struct PValueEstimate {
  double p_value = 1.0;
  SignificanceMethod method = SignificanceMethod::kEmpirical;
  /// The tail-fit gate verdict (false when the fit was never attempted —
  /// kEmpirical, or kAuto with the observed value in simulated range).
  bool tail_fit_ok = false;
  /// KS distance of the attempted tail fit (1 when not attempted).
  double tail_ks = 1.0;
};

/// A significance threshold that knows whether it is exact. Distinguishes
/// "alpha is unresolvable at this world count" from "nothing reached the
/// threshold" — previously both surfaced as +inf.
struct CriticalValueInfo {
  /// The threshold: the empirical order statistic when `resolvable`, the
  /// Gumbel advisory quantile when `advisory_tail`, +inf otherwise.
  double value = 0.0;
  /// floor(alpha*(num_worlds+1)) >= 1: the empirical null can express a
  /// threshold at this alpha. When false, no region can clear the exact
  /// Monte Carlo test at this world count no matter how extreme.
  bool resolvable = false;
  /// `value` is the Gumbel quantile at 1-alpha (fit passed the quality
  /// gate), offered as an ADVISORY threshold where the empirical one is
  /// unresolvable. Never set when `resolvable`.
  bool advisory_tail = false;
};

/// The simulated null distribution of the max statistic.
///
/// Storage model: the sorted maxima live in a single immutable allocation
/// owned through a type-erased shared keepalive, and the object itself holds
/// only a span into it. Copying a NullDistribution (e.g. into every
/// AuditResult) is therefore O(1) — a span plus a reference bump, never a
/// heap copy of W doubles — and the same representation serves ZERO-COPY
/// views whose maxima live in storage the distribution does not own at all,
/// such as an mmap'd CalibrationStore frame (the keepalive then pins the
/// mapping, so views stay valid even after the frame is unlinked on disk —
/// POSIX keeps mapped pages alive until the last munmap).
class NullDistribution {
 public:
  NullDistribution() = default;
  explicit NullDistribution(std::vector<double> max_llrs);
  /// An (adaptively) early-stopped calibration: `max_llrs` holds the
  /// completed contiguous world prefix of a run that targeted
  /// `worlds_requested` worlds, cut short because `stop_reason` settled the
  /// decision. Requires worlds_requested >= max_llrs.size().
  NullDistribution(std::vector<double> max_llrs, uint64_t worlds_requested,
                   McStopReason stop_reason);
  /// Zero-copy view: `sorted_maxima` must already be sorted DESCENDING and
  /// must stay valid for as long as `backing` keeps its referent alive (the
  /// caller — CalibrationStore::LoadView — validates sortedness during its
  /// one-time frame validation). No bytes are copied; every copy of the
  /// resulting object shares `backing`.
  NullDistribution(std::span<const double> sorted_maxima,
                   std::shared_ptr<const void> backing,
                   uint64_t worlds_requested, McStopReason stop_reason);

  size_t num_worlds() const { return maxima_.size(); }
  std::span<const double> sorted_max() const { return maxima_; }
  /// Owned copy of the maxima (tests, serialization helpers). O(W).
  std::vector<double> MaximaVector() const {
    return std::vector<double>(maxima_.begin(), maxima_.end());
  }
  /// True when the maxima live in storage this object does not own (an
  /// mmap'd store frame held alive through the backing keepalive).
  bool zero_copy() const { return zero_copy_; }

  /// The world count the simulation targeted; equals num_worlds() for full
  /// runs, exceeds it for early-stopped calibrations.
  uint64_t worlds_requested() const { return worlds_requested_; }
  bool early_stopped() const { return num_worlds() < worlds_requested_; }
  /// Why an early-stopped run ended (kNone for full runs).
  McStopReason stop_reason() const { return stop_reason_; }

  /// Monte Carlo p-value of an observed max statistic: with the observed
  /// world included, p = (1 + #{null >= observed}) / (num_worlds + 1), the
  /// paper's k/w rank formulation.
  double PValue(double observed) const;

  /// Per-region significance threshold at level `alpha`: the smallest Λ such
  /// that PValue(Λ) <= alpha. Regions with Λ > CriticalValue(alpha) are
  /// individually significant. Returns +inf when alpha is unattainable with
  /// this many worlds (alpha < 1/(num_worlds+1)).
  double CriticalValue(double alpha) const;

  /// Smooth far-tail p-value from a Gumbel fit to the simulated maxima
  /// (Abrams/Kulldorff/Kleinman-style). Unlike PValue, this can resolve
  /// values far below 1/num_worlds; it is an approximation and should be
  /// reported alongside the exact Monte Carlo rank p-value. Fails when the
  /// simulated maxima are too few or degenerate (< 2 distinct values —
  /// e.g. tiny families where every world scans to 0); use ResolvePValue
  /// for the error-free gated form.
  Result<double> GumbelPValue(double observed) const;

  /// Fits the Gumbel tail by moments and grades it: ks_distance is the KS
  /// distance of the fitted CDF against the empirical maxima, `ok` requires
  /// it within `max_ks`. Degenerate nulls yield fitted=false (never an
  /// error). O(num_worlds).
  TailFit AssessTailFit(double max_ks = kDefaultTailKsGate) const;

  /// Resolves the p-value of `observed` under `method` (see
  /// SignificanceMethod), degrading cleanly: whenever the tail fit fails or
  /// flunks the quality gate, the empirical rank p-value is served and the
  /// returned PValueEstimate says so. A kAuto tail value is additionally
  /// clamped to the empirical cap 1/(num_worlds+1) (it only fires beyond
  /// the simulated range, where empirical saturates there).
  PValueEstimate ResolvePValue(double observed, SignificanceMethod method,
                               double max_ks = kDefaultTailKsGate) const;

  /// CriticalValue with resolvability made explicit. When the empirical
  /// threshold is unresolvable (floor(alpha*(W+1)) == 0) and
  /// `tail_advisory` is set, a healthy tail fit supplies the Gumbel
  /// quantile at 1-alpha as an advisory threshold (advisory_tail = true);
  /// otherwise the value is +inf with both flags false.
  CriticalValueInfo CriticalValueEx(double alpha, bool tail_advisory = false,
                                    double max_ks = kDefaultTailKsGate) const;

 private:
  /// Installs an owned, freshly sorted maxima vector behind the keepalive.
  void AdoptOwned(std::vector<double> max_llrs);

  std::span<const double> maxima_;       // sorted descending
  std::shared_ptr<const void> backing_;  // owns (or pins) maxima_'s storage
  uint64_t worlds_requested_ = 0;  // == maxima_.size() unless early-stopped
  McStopReason stop_reason_ = McStopReason::kNone;
  bool zero_copy_ = false;
};

/// A NullDistribution whose maxima are served zero-copy out of storage owned
/// elsewhere — in practice an mmap'd CalibrationStore frame. Same type, same
/// API: after the span/backing refactor the distinction is purely where the
/// backing keepalive points, so views flow through the cache, the pipeline,
/// and AuditResult without any call-site changes.
using NullDistributionView = NullDistribution;

/// Validates the decision-relevant Monte Carlo options: the world count
/// and, when enabled, the adaptive sequential-stopping configuration.
/// Shared by both SimulateNull entry points.
Status ValidateMonteCarloOptions(const MonteCarloOptions& options);

/// Simulates the null distribution for `family`. `rho` is the global
/// positive rate and `total_positives` the observed P (used by the
/// permutation null).
Result<NullDistribution> SimulateNull(const RegionFamily& family, double rho,
                                      uint64_t total_positives,
                                      stats::ScanDirection direction,
                                      const MonteCarloOptions& options);

}  // namespace sfa::core

#endif  // SFA_CORE_SIGNIFICANCE_H_
