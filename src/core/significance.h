// Monte Carlo calibration of the scan statistic (paper §3): simulate W-1
// alternate worlds that keep every individual's location but redraw labels
// under spatial fairness, record each world's max statistic, and read off
// p-values and per-region critical values from the resulting null
// distribution of max Λ.
#ifndef SFA_CORE_SIGNIFICANCE_H_
#define SFA_CORE_SIGNIFICANCE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "core/region_family.h"
#include "stats/bernoulli_scan.h"

namespace sfa {
class CancellationToken;  // common/thread_pool.h
}

namespace sfa::core {

enum class NullModel {
  /// Each label is an independent Bernoulli(ρ) trial — the paper's variant.
  kBernoulli,
  /// Exactly P positives permuted over locations (Kulldorff's conditional
  /// null). Provided for ablation; slightly tighter for small N.
  kPermutation,
};

const char* NullModelToString(NullModel model);

/// Execution strategy of the world engine. Both strategies produce
/// bit-identical NullDistributions for the same options (per-world RNG
/// substreams + shared log-table LLR); kReference exists as the semantic
/// baseline and for A/B benchmarking.
enum class McEngine {
  /// Worlds in batches of batch_size through CountPositivesBatch, all
  /// per-world buffers pooled in thread-local arenas (the default).
  kBatched,
  /// One world at a time, fresh buffers, scalar CountPositives.
  kReference,
};

const char* McEngineToString(McEngine engine);

struct MonteCarloOptions {
  /// Number of simulated worlds (W-1 in the paper's notation; the observed
  /// world makes it W). 999 gives p-value resolution 0.001.
  uint32_t num_worlds = 999;
  NullModel null_model = NullModel::kBernoulli;
  uint64_t seed = 99;
  /// Worlds are simulated on the default thread pool when true; results are
  /// identical either way (per-world substreams).
  bool parallel = true;
  McEngine engine = McEngine::kBatched;
  /// Worlds per batch in the kBatched engine. Affects performance only,
  /// never results — for every family counting backend (partition/closed-form
  /// cells, overlapping sparse-annulus scatter, dense bit vectors; see
  /// core::CountingBackend) counts are exact integers, so batch boundaries
  /// cannot shift the null distribution.
  uint32_t batch_size = 8;
  /// When the family exposes a cell decomposition (grid, rectangle sweep,
  /// single partitioning) and the null is Bernoulli, draw per-cell positives
  /// directly as independent Binomial(n_c, ρ) — O(cells) per world instead of
  /// O(N) point labeling. Distributionally identical to point-level sampling
  /// (the per-cell counts of i.i.d. Bernoulli labels ARE independent
  /// binomials) but consumes a different RNG stream, so disable it to
  /// reproduce point-level draws world-by-world.
  bool closed_form_cells = true;

  // --- Execution-only cooperative stop controls -----------------------------
  // Consulted between world batches, and ONLY when the caller passes a
  // McRunOutcome (core/mc_engine.h) — a run that cannot report partial
  // progress is never stopped early, so it can never silently return (or
  // cache) a short null distribution. These fields are intentionally absent
  // from calibration keys (core/calibration_cache.cc): they change when a
  // simulation stops, never what it computes.

  /// Sticky cooperative cancel, polled at batch boundaries. Not owned.
  const CancellationToken* cancel = nullptr;
  /// Liveness callback fired at every world-batch boundary regardless of
  /// stoppability (callee rate-limits). The calibration fabric wires this to
  /// the key's lease heartbeat (core/calibration_cache.h ComputeContext) so
  /// a long simulation keeps its cross-process lease fresh. Execution-only:
  /// absent from calibration keys, never affects drawn values.
  std::function<void()> heartbeat;
  /// Absolute deadline; epoch-zero (the default) means none. Worlds whose
  /// batch starts before the deadline still run to completion — the engine
  /// stops before batches, never inside one.
  std::chrono::steady_clock::time_point deadline{};
};

/// The simulated null distribution of the max statistic.
class NullDistribution {
 public:
  NullDistribution() = default;
  explicit NullDistribution(std::vector<double> max_llrs);

  size_t num_worlds() const { return sorted_max_.size(); }
  const std::vector<double>& sorted_max() const { return sorted_max_; }

  /// Monte Carlo p-value of an observed max statistic: with the observed
  /// world included, p = (1 + #{null >= observed}) / (num_worlds + 1), the
  /// paper's k/w rank formulation.
  double PValue(double observed) const;

  /// Per-region significance threshold at level `alpha`: the smallest Λ such
  /// that PValue(Λ) <= alpha. Regions with Λ > CriticalValue(alpha) are
  /// individually significant. Returns +inf when alpha is unattainable with
  /// this many worlds (alpha < 1/(num_worlds+1)).
  double CriticalValue(double alpha) const;

  /// Smooth far-tail p-value from a Gumbel fit to the simulated maxima
  /// (Abrams/Kulldorff/Kleinman-style). Unlike PValue, this can resolve
  /// values far below 1/num_worlds; it is an approximation and should be
  /// reported alongside the exact Monte Carlo rank p-value. Fails when the
  /// simulated maxima are too few or constant.
  Result<double> GumbelPValue(double observed) const;

 private:
  std::vector<double> sorted_max_;  // descending
};

/// Simulates the null distribution for `family`. `rho` is the global
/// positive rate and `total_positives` the observed P (used by the
/// permutation null).
Result<NullDistribution> SimulateNull(const RegionFamily& family, double rho,
                                      uint64_t total_positives,
                                      stats::ScanDirection direction,
                                      const MonteCarloOptions& options);

}  // namespace sfa::core

#endif  // SFA_CORE_SIGNIFICANCE_H_
