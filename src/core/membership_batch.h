// Shared batch-counting kernel for region families whose regions are
// memoized membership bit vectors over point ids (the dense-bits backend of
// SquareScanFamily and KnnCircleFamily): each membership vector is streamed
// once per batch and intersected against every world's label bits via the
// word-blocked BitVector::AndPopcountMany.
#ifndef SFA_CORE_MEMBERSHIP_BATCH_H_
#define SFA_CORE_MEMBERSHIP_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "core/labels.h"
#include "spatial/bitvector.h"

namespace sfa::core {

/// Thread-local scratch of the kernel below — the per-batch bit-view pointer
/// table and the per-membership count row — so steady-state batches allocate
/// nothing, matching the Monte Carlo engine's arena discipline. Safe because
/// the buffers are only live within one kernel call on the owning thread.
struct MembershipBatchScratch {
  std::vector<const spatial::BitVector*> bits;
  std::vector<uint64_t> counts;
};

inline MembershipBatchScratch& LocalMembershipBatchScratch() {
  static thread_local MembershipBatchScratch scratch;
  return scratch;
}

/// Heap bytes of a dense membership representation, the dense side of the
/// families' sparse-vs-dense MembershipBytes comparison.
inline size_t DenseMembershipBytes(
    const std::vector<spatial::BitVector>& memberships) {
  size_t bytes = 0;
  for (const spatial::BitVector& m : memberships) {
    bytes += m.num_words() * sizeof(uint64_t);
  }
  return bytes;
}

inline void CountPositivesBatchWithMemberships(
    const std::vector<spatial::BitVector>& memberships, size_t num_points,
    const Labels* const* batch, size_t num_worlds, uint64_t* out) {
  SFA_CHECK(batch != nullptr && out != nullptr);
  const size_t stride = memberships.size();
  MembershipBatchScratch& scratch = LocalMembershipBatchScratch();
  scratch.bits.resize(num_worlds);
  scratch.counts.resize(num_worlds);
  for (size_t b = 0; b < num_worlds; ++b) {
    SFA_CHECK_MSG(batch[b]->size() == num_points,
                  "labels " << batch[b]->size() << " != points " << num_points);
    scratch.bits[b] = &batch[b]->bits();  // materialized once per world
  }
  for (size_t r = 0; r < stride; ++r) {
    spatial::BitVector::AndPopcountMany(memberships[r], scratch.bits.data(),
                                        num_worlds, scratch.counts.data());
    for (size_t b = 0; b < num_worlds; ++b) {
      out[b * stride + r] = scratch.counts[b];
    }
  }
}

}  // namespace sfa::core

#endif  // SFA_CORE_MEMBERSHIP_BATCH_H_
