// Shared batch-counting kernel for region families whose regions are
// memoized membership bit vectors over point ids (SquareScanFamily,
// KnnCircleFamily): each membership vector is streamed once per batch and
// intersected against every world's label bits via the word-blocked
// BitVector::AndPopcountMany.
#ifndef SFA_CORE_MEMBERSHIP_BATCH_H_
#define SFA_CORE_MEMBERSHIP_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "core/labels.h"
#include "spatial/bitvector.h"

namespace sfa::core {

inline void CountPositivesBatchWithMemberships(
    const std::vector<spatial::BitVector>& memberships, size_t num_points,
    const Labels* const* batch, size_t num_worlds, uint64_t* out) {
  SFA_CHECK(batch != nullptr && out != nullptr);
  const size_t stride = memberships.size();
  std::vector<const spatial::BitVector*> bits(num_worlds);
  for (size_t b = 0; b < num_worlds; ++b) {
    SFA_CHECK_MSG(batch[b]->size() == num_points,
                  "labels " << batch[b]->size() << " != points " << num_points);
    bits[b] = &batch[b]->bits();  // materialized once per world, word-packed
  }
  std::vector<uint64_t> counts(num_worlds);
  for (size_t r = 0; r < stride; ++r) {
    spatial::BitVector::AndPopcountMany(memberships[r], bits.data(), num_worlds,
                                        counts.data());
    for (size_t b = 0; b < num_worlds; ++b) out[b * stride + r] = counts[b];
  }
}

}  // namespace sfa::core

#endif  // SFA_CORE_MEMBERSHIP_BATCH_H_
