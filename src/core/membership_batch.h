// Shared batch-counting kernel for region families whose regions are
// memoized membership bit vectors over point ids (the dense-bits backend of
// SquareScanFamily and KnnCircleFamily): each membership vector is streamed
// once per batch and intersected against every world's label bits via the
// word-blocked BitVector::AndPopcountMany.
#ifndef SFA_CORE_MEMBERSHIP_BATCH_H_
#define SFA_CORE_MEMBERSHIP_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "core/labels.h"
#include "core/region_family.h"
#include "spatial/bitvector.h"

namespace sfa::core {

/// Thread-local scratch of the kernel below — the per-batch bit-view pointer
/// table and the per-membership count row — so steady-state batches allocate
/// nothing, matching the Monte Carlo engine's arena discipline. Safe because
/// the buffers are only live within one kernel call on the owning thread.
struct MembershipBatchScratch {
  std::vector<const spatial::BitVector*> bits;
  std::vector<uint64_t> counts;
  // Per-(world, class) indicator bit planes of the multi-class kernel below;
  // AssignFromByteValue reuses their word storage across batches.
  std::vector<spatial::BitVector> class_bits;
};

inline MembershipBatchScratch& LocalMembershipBatchScratch() {
  static thread_local MembershipBatchScratch scratch;
  return scratch;
}

/// Heap bytes of a dense membership representation, the dense side of the
/// families' sparse-vs-dense MembershipBytes comparison.
inline size_t DenseMembershipBytes(
    const std::vector<spatial::BitVector>& memberships) {
  size_t bytes = 0;
  for (const spatial::BitVector& m : memberships) {
    bytes += m.num_words() * sizeof(uint64_t);
  }
  return bytes;
}

inline void CountPositivesBatchWithMemberships(
    const std::vector<spatial::BitVector>& memberships, size_t num_points,
    const Labels* const* batch, size_t num_worlds, uint64_t* out) {
  SFA_CHECK(batch != nullptr && out != nullptr);
  const size_t stride = memberships.size();
  MembershipBatchScratch& scratch = LocalMembershipBatchScratch();
  scratch.bits.resize(num_worlds);
  scratch.counts.resize(num_worlds);
  for (size_t b = 0; b < num_worlds; ++b) {
    SFA_CHECK_MSG(batch[b]->size() == num_points,
                  "labels " << batch[b]->size() << " != points " << num_points);
    scratch.bits[b] = &batch[b]->bits();  // materialized once per world
  }
  for (size_t r = 0; r < stride; ++r) {
    spatial::BitVector::AndPopcountMany(memberships[r], scratch.bits.data(),
                                        num_worlds, scratch.counts.data());
    for (size_t b = 0; b < num_worlds; ++b) {
      out[b * stride + r] = scratch.counts[b];
    }
  }
}

/// Multi-class batch kernel of the dense backend: packs each (world, class)
/// pair of a packed K-class batch into an indicator bit plane
/// (BitVector::AssignFromByteValue, SWAR) and treats the flattened
/// world*(K−1)+class planes as virtual worlds of the word-blocked
/// AndPopcountMany — so the SIMD kernel amortizes each membership vector
/// across ALL classes of ALL worlds in one streaming pass. `out` follows the
/// RegionFamily::CountClassesBatch layout.
inline void CountClassesBatchWithMemberships(
    const std::vector<spatial::BitVector>& memberships, size_t num_points,
    const uint8_t* const* class_worlds, size_t num_worlds, uint32_t num_classes,
    uint64_t* out) {
  SFA_CHECK(class_worlds != nullptr && out != nullptr);
  SFA_CHECK_MSG(num_classes >= 2,
                "CountClassesBatchWithMemberships needs at least 2 classes");
  const uint32_t counted = num_classes - 1;
  const size_t stride = memberships.size();
  const size_t planes = num_worlds * static_cast<size_t>(counted);
  MembershipBatchScratch& scratch = LocalMembershipBatchScratch();
  scratch.class_bits.resize(planes);
  scratch.bits.resize(planes);
  scratch.counts.resize(planes);
  for (size_t w = 0; w < num_worlds; ++w) {
    for (uint32_t k = 0; k < counted; ++k) {
      spatial::BitVector& plane =
          scratch.class_bits[w * static_cast<size_t>(counted) + k];
      plane.AssignFromByteValue(class_worlds[w], num_points,
                                static_cast<uint8_t>(k));
      scratch.bits[w * static_cast<size_t>(counted) + k] = &plane;
    }
  }
  for (size_t r = 0; r < stride; ++r) {
    spatial::BitVector::AndPopcountMany(memberships[r], scratch.bits.data(),
                                        planes, scratch.counts.data());
    for (size_t p = 0; p < planes; ++p) {
      out[p * stride + r] = scratch.counts[p];
    }
  }
}

}  // namespace sfa::core

#endif  // SFA_CORE_MEMBERSHIP_BATCH_H_
