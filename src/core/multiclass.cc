#include "core/multiclass.h"

#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/grid_family.h"

namespace sfa::core {

MulticlassAuditResult ToMulticlassResult(const AuditResult& result) {
  MulticlassAuditResult out;
  out.spatially_fair = result.spatially_fair;
  out.p_value = result.p_value;
  out.tau = result.tau;
  out.critical_value = result.critical_value;
  out.alpha = result.alpha;
  out.total_n = result.total_n;
  out.class_distribution = result.class_distribution;
  out.findings.reserve(result.findings.size());
  for (const RegionFinding& finding : result.findings) {
    MulticlassFinding f;
    f.cell = static_cast<uint32_t>(finding.region_index);
    f.rect = finding.rect;
    f.n = finding.n;
    f.class_counts = finding.class_counts;
    f.llr = finding.llr;
    out.findings.push_back(std::move(f));
  }
  return out;
}

Result<MulticlassAuditResult> AuditMulticlassGrid(
    const std::vector<geo::Point>& locations, const std::vector<uint8_t>& classes,
    uint32_t num_classes, const MulticlassAuditOptions& options) {
  if (locations.empty()) return Status::InvalidArgument("no individuals");
  if (locations.size() != classes.size()) {
    return Status::InvalidArgument(
        StrFormat("locations (%zu) and classes (%zu) must be parallel",
                  locations.size(), classes.size()));
  }

  // The outcome view: locations + class ids in the predicted slot (the
  // multinomial statistic's outcome stream).
  data::OutcomeDataset view("multiclass");
  for (size_t i = 0; i < locations.size(); ++i) {
    view.Add(locations[i], classes[i]);
  }

  SFA_ASSIGN_OR_RETURN(
      std::unique_ptr<GridPartitionFamily> family,
      GridPartitionFamily::Create(locations, options.grid_x, options.grid_y));

  AuditOptions audit_options;
  audit_options.alpha = options.alpha;
  audit_options.statistic = StatisticKind::kMultinomial;
  audit_options.num_classes = num_classes;
  audit_options.monte_carlo = options.monte_carlo;
  SFA_ASSIGN_OR_RETURN(AuditResult result,
                       Auditor(audit_options).AuditView(view, *family));
  return ToMulticlassResult(result);
}

}  // namespace sfa::core
