#include "core/multiclass.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "spatial/grid_index.h"
#include "stats/multinomial_scan.h"

namespace sfa::core {

namespace {

// Per-cell per-class counts under a class assignment, then the max (and
// optionally all) multinomial LLRs. `counts` is a scratch of
// num_cells * num_classes entries, zeroed here. The comparison totals are
// recomputed from `classes` so simulated worlds are self-consistent.
double ScanCells(const spatial::GridIndex& index, const std::vector<uint8_t>& classes,
                 uint32_t num_classes, std::vector<uint64_t>* counts,
                 std::vector<double>* llrs_out) {
  std::vector<uint64_t> totals(num_classes, 0);
  for (uint8_t c : classes) ++totals[c];
  const uint32_t num_cells = index.grid().num_cells();
  counts->assign(static_cast<size_t>(num_cells) * num_classes, 0);
  const auto& assignments = index.cell_assignments();
  for (size_t i = 0; i < assignments.size(); ++i) {
    const uint32_t cell = assignments[i];
    if (cell != geo::GridSpec::kInvalidCell) {
      ++(*counts)[static_cast<size_t>(cell) * num_classes + classes[i]];
    }
  }
  if (llrs_out != nullptr) llrs_out->assign(num_cells, 0.0);
  double max_llr = 0.0;
  std::vector<uint64_t> inside(num_classes);
  for (uint32_t cell = 0; cell < num_cells; ++cell) {
    for (uint32_t k = 0; k < num_classes; ++k) {
      inside[k] = (*counts)[static_cast<size_t>(cell) * num_classes + k];
    }
    const double llr = stats::MultinomialLogLikelihoodRatio(inside, totals);
    if (llrs_out != nullptr) (*llrs_out)[cell] = llr;
    max_llr = std::max(max_llr, llr);
  }
  return max_llr;
}

}  // namespace

Result<MulticlassAuditResult> AuditMulticlassGrid(
    const std::vector<geo::Point>& locations, const std::vector<uint8_t>& classes,
    uint32_t num_classes, const MulticlassAuditOptions& options) {
  if (locations.empty()) return Status::InvalidArgument("no individuals");
  if (locations.size() != classes.size()) {
    return Status::InvalidArgument(
        StrFormat("locations (%zu) and classes (%zu) must be parallel",
                  locations.size(), classes.size()));
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 outcome classes");
  }
  for (uint8_t c : classes) {
    if (c >= num_classes) {
      return Status::InvalidArgument(
          StrFormat("class value %u outside [0, %u)", c, num_classes));
    }
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (options.monte_carlo.num_worlds == 0) {
    return Status::InvalidArgument("Monte Carlo needs at least one world");
  }

  geo::Rect extent = geo::Rect::BoundingBox(locations);
  extent.max_x += std::max(extent.width(), 1e-12) * 1e-9;
  extent.max_y += std::max(extent.height(), 1e-12) * 1e-9;
  SFA_ASSIGN_OR_RETURN(geo::GridSpec grid,
                       geo::GridSpec::Create(extent, options.grid_x, options.grid_y));
  const spatial::GridIndex index(grid, locations);

  MulticlassAuditResult result;
  result.alpha = options.alpha;
  result.total_n = locations.size();
  std::vector<uint64_t> totals(num_classes, 0);
  for (uint8_t c : classes) ++totals[c];
  result.class_distribution.resize(num_classes);
  for (uint32_t k = 0; k < num_classes; ++k) {
    result.class_distribution[k] =
        static_cast<double>(totals[k]) / static_cast<double>(locations.size());
  }

  // Observed world.
  std::vector<uint64_t> scratch;
  std::vector<double> observed_llrs;
  result.tau = ScanCells(index, classes, num_classes, &scratch, &observed_llrs);

  // Null worlds: classes redrawn i.i.d. from the global distribution.
  std::vector<double> null_max(options.monte_carlo.num_worlds, 0.0);
  Rng root(options.monte_carlo.seed);
  auto run_world = [&](size_t w) {
    Rng rng = root.Split(w);
    std::vector<uint8_t> fake(classes.size());
    for (auto& c : fake) {
      c = static_cast<uint8_t>(rng.Categorical(result.class_distribution));
    }
    std::vector<uint64_t> world_scratch;
    null_max[w] = ScanCells(index, fake, num_classes, &world_scratch, nullptr);
  };
  if (options.monte_carlo.parallel) {
    DefaultThreadPool().ParallelFor(options.monte_carlo.num_worlds, run_world);
  } else {
    for (size_t w = 0; w < options.monte_carlo.num_worlds; ++w) run_world(w);
  }

  const NullDistribution null_dist(std::move(null_max));
  result.p_value = null_dist.PValue(result.tau);
  result.spatially_fair = result.p_value > options.alpha;
  result.critical_value = null_dist.CriticalValue(options.alpha);

  for (uint32_t cell = 0; cell < grid.num_cells(); ++cell) {
    if (!(observed_llrs[cell] > result.critical_value)) continue;
    MulticlassFinding finding;
    finding.cell = cell;
    finding.rect = grid.CellRectById(cell);
    finding.llr = observed_llrs[cell];
    finding.class_counts.resize(num_classes);
    for (uint32_t k = 0; k < num_classes; ++k) {
      finding.class_counts[k] =
          scratch[static_cast<size_t>(cell) * num_classes + k];
      finding.n += finding.class_counts[k];
    }
    result.findings.push_back(std::move(finding));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const MulticlassFinding& a, const MulticlassFinding& b) {
              return a.llr > b.llr;
            });
  return result;
}

}  // namespace sfa::core
