// Sparse nested-ladder counting backend for overlapping region families.
//
// SquareScanFamily and KnnCircleFamily share one structure: per scan center,
// the size ladder is a chain R_1 ⊂ R_2 ⊂ … ⊂ R_L (kNN circles by
// construction, concentric half-open squares by nesting of their rects). The
// chain decomposes into disjoint per-center *annuli*: every point inside the
// largest rung has a unique rank — the smallest rung that contains it — and
// rung ℓ's member set is exactly the union of annuli 0..ℓ.
//
// The index therefore stores each center's membership ONCE, as (point, rank)
// entries over the largest rung, instead of L dense bit vectors — an L-fold
// cut in membership memory and construction work. Entries are laid out as a
// point-major CSR (spatial::Csr32) whose payload is the flat histogram slot
// center * L + rank, so counting a world is a scatter over only its POSITIVE
// points:
//
//   for each positive point p:  for each slot s of p:  ++hist[s]
//   per center: prefix-sum hist over ranks  =>  p(R) for all L rungs at once
//
// O(positive entries) per world, no dense label bits, no per-region
// AND+popcount pass. The dense bit-vector path remains available in the
// families as the bit-identical reference (core::CountingBackend).
#ifndef SFA_CORE_ANNULUS_INDEX_H_
#define SFA_CORE_ANNULUS_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/labels.h"
#include "spatial/csr.h"

namespace sfa::core {

/// One (point, center, rank) incidence: `point` belongs to the annulus of
/// rank `rank` at `center`, i.e. rank is the smallest ladder rung whose
/// region contains the point.
struct AnnulusEntry {
  uint32_t point = 0;
  uint32_t center = 0;
  uint32_t rank = 0;
};

/// Drops ladder rungs that capture no annulus entry at any center — rung ℓ>0
/// is empty exactly when every center's rung-ℓ member set equals its rung-
/// (ℓ-1) set, so such rungs are duplicate regions. Entry ranks are remapped
/// in place to the surviving ladder; returns the surviving original rung
/// indices, ascending (rung 0 always survives). Families use this to dedup
/// their size ladders identically in both counting backends.
std::vector<uint32_t> CollapseEmptyAnnuli(size_t num_rungs,
                                          std::vector<AnnulusEntry>* entries);

class AnnulusIndex {
 public:
  AnnulusIndex() = default;

  /// Builds the point-major scatter index. `num_rungs` is the ladder length
  /// (after any dedup); every entry's rank must be < num_rungs and its
  /// center < num_centers. Region index convention matches the families:
  /// region r = center * num_rungs + rank-prefix.
  AnnulusIndex(size_t num_points, size_t num_centers, size_t num_rungs,
               const std::vector<AnnulusEntry>& entries);

  size_t num_points() const { return num_points_; }
  size_t num_centers() const { return num_centers_; }
  size_t num_rungs() const { return num_rungs_; }
  size_t num_regions() const { return num_centers_ * num_rungs_; }
  size_t num_entries() const { return csr_.num_entries(); }

  /// Heap bytes held by the index (CSR arrays + cached point counts) — the
  /// sparse side of the family memory comparison.
  size_t MemoryBytes() const;

  /// n(R) for every region, precomputed at build (all labels positive).
  const std::vector<uint64_t>& region_point_counts() const {
    return region_point_counts_;
  }

  /// p(R) for one world given the ids of its positive points. `hist` is
  /// caller-owned scratch of num_regions() uint32 slots (zeroed here), `out`
  /// caller-owned with num_regions() slots. Thread-safe for distinct
  /// scratch/out buffers.
  void CountPositives(const uint32_t* positives, size_t num_positives,
                      uint32_t* hist, uint64_t* out) const;

  /// Per-class p(R) for one packed K-class world in a single scatter pass:
  /// every point with class k < classes_counted adds its CSR row into the
  /// k-th histogram slice (points of the derived last class are skipped, as
  /// in the K−1 indicator construction). `hist` is caller-owned scratch of
  /// classes_counted * num_regions() uint32 slots (zeroed here), `out` is
  /// caller-owned with the same extent, row-major [class x region]. Thread-
  /// safe for distinct scratch/out buffers.
  void CountClasses(const uint8_t* classes, uint32_t classes_counted,
                    uint32_t* hist, uint64_t* out) const;

 private:
  spatial::Csr32 csr_;  // row = point, value = center * num_rungs + rank
  std::vector<uint64_t> region_point_counts_;
  size_t num_points_ = 0;
  size_t num_centers_ = 0;
  size_t num_rungs_ = 0;
};

/// Thread-local annulus histogram scratch shared by the scatter paths of all
/// families on a thread (only live within one counting call).
std::vector<uint32_t>& LocalAnnulusHistogram();

/// Scalar kernel of the sparse backend: p(R) for one world through `index`
/// via the world's sparse positive view, histogram scratch pooled
/// thread-locally. `out` is caller-owned with index.num_regions() slots.
void CountPositivesWithAnnulus(const AnnulusIndex& index, const Labels& labels,
                               uint64_t* out);

/// Batch kernel of the sparse backend: counts `num_worlds` worlds through
/// `index` via each world's sparse positive view (Labels::positive_indices),
/// scatter scratch pooled thread-locally. `out` is row-major
/// [num_worlds x index.num_regions()], caller-owned. Never materializes
/// dense label bits.
void CountPositivesBatchWithAnnulus(const AnnulusIndex& index,
                                    size_t num_points,
                                    const Labels* const* batch,
                                    size_t num_worlds, uint64_t* out);

/// Multi-class batch kernel of the sparse backend: per-class counts for
/// `num_worlds` packed K-class worlds (class_worlds[w][i] in [0, num_classes))
/// through one scatter pass per world — the K−1 indicator materializations
/// and repeated passes of the legacy path disappear. `out` follows the
/// RegionFamily::CountClassesBatch layout
/// [num_worlds x (num_classes−1) x num_regions], caller-owned; histogram
/// scratch pooled thread-locally.
void CountClassesBatchWithAnnulus(const AnnulusIndex& index,
                                  const uint8_t* const* class_worlds,
                                  size_t num_worlds, uint32_t num_classes,
                                  uint64_t* out);

}  // namespace sfa::core

#endif  // SFA_CORE_ANNULUS_INDEX_H_
