#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace sfa::core {

std::string FormatAuditSummary(const AuditResult& result,
                               const std::string& dataset_name) {
  std::string out;
  out += StrFormat("=== Spatial fairness audit: %s ===\n", dataset_name.c_str());
  if (result.statistic == StatisticKind::kMultinomial) {
    out += StrFormat("  N = %s individuals, %zu outcome classes (",
                     WithThousands(static_cast<int64_t>(result.total_n)).c_str(),
                     result.class_distribution.size());
    for (size_t k = 0; k < result.class_distribution.size(); ++k) {
      out += StrFormat(k == 0 ? "%.3f" : ", %.3f",
                       result.class_distribution[k]);
    }
    out += ")\n";
  } else {
    out += StrFormat("  N = %s individuals, P = %s positive, rho = %.4f\n",
                     WithThousands(static_cast<int64_t>(result.total_n)).c_str(),
                     WithThousands(static_cast<int64_t>(result.total_p)).c_str(),
                     result.overall_rate);
  }
  out += StrFormat("  tau (max log-likelihood ratio) = %.3f\n", result.tau);
  if (result.p_value_method == SignificanceMethod::kGumbelTail) {
    // Tail p-values resolve far below the empirical 1/(W+1) cap; print in
    // scientific notation and say where the number came from.
    out += StrFormat(
        "  p-value (Gumbel tail, KS=%.3f) = %.3e\n", result.tail_ks,
        result.p_value);
  } else {
    out += StrFormat("  Monte Carlo p-value            = %.4f\n",
                     result.p_value);
  }
  if (result.null_distribution.early_stopped()) {
    out += StrFormat(
        "  adaptive MC: stopped at %zu/%llu worlds (%s)\n",
        result.null_distribution.num_worlds(),
        static_cast<unsigned long long>(
            result.null_distribution.worlds_requested()),
        McStopReasonToString(result.null_distribution.stop_reason()));
  }
  out += StrFormat("  critical LLR at alpha=%.3f     = %.3f%s\n", result.alpha,
                   result.critical_value,
                   result.critical_value_advisory
                       ? " (Gumbel advisory: empirical threshold "
                         "unresolvable at this world budget)"
                   : !result.critical_value_resolvable
                       ? " (unresolvable at this world budget)"
                       : "");
  out += StrFormat("  verdict: %s\n",
                   result.spatially_fair ? "SPATIALLY FAIR (H0 not rejected)"
                                         : "SPATIALLY UNFAIR (H0 rejected)");
  out += StrFormat("  significant regions: %zu\n", result.findings.size());
  return out;
}

std::string FormatFindingsTable(const std::vector<RegionFinding>& findings,
                                size_t max_rows) {
  std::string out;
  const size_t rows = std::min(max_rows, findings.size());
  // Multinomial findings carry class_counts and leave the binary p/rate
  // fields zero — rendering them through the binary columns printed
  // "p=0, rate=0.000" for every row. Pick the column set from the evidence
  // actually present (findings are homogeneous per audit).
  const bool multinomial = !findings.empty() && !findings[0].class_counts.empty();
  if (multinomial) {
    out += "  rank |        n | classes         | LLR        | region\n";
    out += "  -----+----------+-----------------+------------+-------\n";
    for (size_t i = 0; i < rows; ++i) {
      const RegionFinding& f = findings[i];
      std::string counts;
      for (size_t k = 0; k < f.class_counts.size(); ++k) {
        counts += StrFormat(
            k == 0 ? "%llu" : "/%llu",
            static_cast<unsigned long long>(f.class_counts[k]));
      }
      out += StrFormat("  %4zu | %8llu | %-15s | %10.3f | %s\n", i + 1,
                       static_cast<unsigned long long>(f.n), counts.c_str(),
                       f.llr, f.rect.ToString().c_str());
    }
  } else {
    out += "  rank |        n |        p |  rate | LLR        | region\n";
    out += "  -----+----------+----------+-------+------------+-------\n";
    for (size_t i = 0; i < rows; ++i) {
      const RegionFinding& f = findings[i];
      out += StrFormat("  %4zu | %8llu | %8llu | %.3f | %10.3f | %s\n", i + 1,
                       static_cast<unsigned long long>(f.n),
                       static_cast<unsigned long long>(f.p), f.local_rate,
                       f.llr, f.rect.ToString().c_str());
    }
  }
  if (findings.size() > rows) {
    out += StrFormat("  ... (%zu more)\n", findings.size() - rows);
  }
  return out;
}

std::string FormatFinding(const RegionFinding& finding) {
  if (!finding.class_counts.empty()) {
    // Multinomial evidence: the class mix replaces the rate fields.
    std::string counts;
    for (size_t k = 0; k < finding.class_counts.size(); ++k) {
      counts += StrFormat(
          k == 0 ? "%llu" : ",%llu",
          static_cast<unsigned long long>(finding.class_counts[k]));
    }
    return StrFormat("n=%llu, classes=(%s), LLR=%.3f, rect=%s",
                     static_cast<unsigned long long>(finding.n), counts.c_str(),
                     finding.llr, finding.rect.ToString().c_str());
  }
  return StrFormat("n=%llu, p=%llu, local rate=%.3f, LLR=%.3f, rect=%s",
                   static_cast<unsigned long long>(finding.n),
                   static_cast<unsigned long long>(finding.p), finding.local_rate,
                   finding.llr, finding.rect.ToString().c_str());
}

std::string FormatMeanVarTable(const MeanVarResult& result, size_t max_rows) {
  std::string out;
  out += StrFormat("  MeanVar = %.6f over %zu partitionings\n", result.mean_var,
                   result.per_partitioning_variance.size());
  out += "  rank |        n |        p | measure | contribution | region\n";
  out += "  -----+----------+----------+---------+--------------+-------\n";
  const size_t rows = std::min(max_rows, result.ranked_partitions.size());
  for (size_t i = 0; i < rows; ++i) {
    const PartitionContribution& c = result.ranked_partitions[i];
    out += StrFormat("  %4zu | %8llu | %8llu |   %.3f |     %.2e | %s\n", i + 1,
                     static_cast<unsigned long long>(c.n),
                     static_cast<unsigned long long>(c.p), c.measure,
                     c.contribution, c.rect.ToString().c_str());
  }
  return out;
}

}  // namespace sfa::core
