// Region family of axis-aligned squares centered at scan centers, one region
// per (center, side length) pair — the paper's §4.3 unrestricted-regions
// setting: 100 k-means centers x 20 side lengths from 0.1 to 2 degrees =
// 2,000 regions.
//
// Membership of every region is memoized as a bit vector over point ids
// (built with one KD-tree range report per region), so each Monte Carlo
// world costs one AND+popcount pass per region.
#ifndef SFA_CORE_SQUARE_FAMILY_H_
#define SFA_CORE_SQUARE_FAMILY_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/region_family.h"
#include "geo/point.h"
#include "spatial/bitvector.h"
#include "spatial/kdtree.h"

namespace sfa::core {

struct SquareScanOptions {
  /// Scan centers. Typically stats::KMeans centers of the observation
  /// locations; any point set works.
  std::vector<geo::Point> centers;
  /// Side lengths in coordinate units (degrees for geographic data).
  std::vector<double> side_lengths;

  /// The paper's default ladder: `count` side lengths evenly spaced in
  /// [min_side, max_side] (20 lengths from 0.1 to 2.0 degrees).
  static std::vector<double> DefaultSideLengths(double min_side = 0.1,
                                                double max_side = 2.0,
                                                uint32_t count = 20);
};

class SquareScanFamily : public RegionFamily {
 public:
  /// Builds membership bit vectors for all centers x side lengths over
  /// `points`. Region index = center_index * num_sides + side_index.
  static Result<std::unique_ptr<SquareScanFamily>> Create(
      const std::vector<geo::Point>& points, const SquareScanOptions& options);

  size_t num_regions() const override { return memberships_.size(); }
  size_t num_points() const override { return num_points_; }
  RegionDescriptor Describe(size_t r) const override;
  uint64_t PointCount(size_t r) const override { return point_counts_[r]; }
  void CountPositives(const Labels& labels,
                      std::vector<uint64_t>* out) const override;
  /// Intersects each membership vector against all B label bit vectors
  /// word-blocked, so membership words are streamed once per batch.
  void CountPositivesBatch(const Labels* const* batch, size_t num_worlds,
                           uint64_t* out) const override;
  std::string Name() const override;

  size_t num_centers() const { return centers_.size(); }
  size_t num_sides() const { return side_lengths_.size(); }
  size_t CenterOfRegion(size_t r) const { return r / side_lengths_.size(); }
  double SideOfRegion(size_t r) const {
    return side_lengths_[r % side_lengths_.size()];
  }
  const std::vector<geo::Point>& centers() const { return centers_; }
  const std::vector<double>& side_lengths() const { return side_lengths_; }

 private:
  SquareScanFamily(const std::vector<geo::Point>& points,
                   const SquareScanOptions& options);

  std::vector<geo::Point> centers_;
  std::vector<double> side_lengths_;
  std::vector<spatial::BitVector> memberships_;
  std::vector<uint64_t> point_counts_;
  size_t num_points_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_SQUARE_FAMILY_H_
