// Region family of axis-aligned squares centered at scan centers, one region
// per (center, side length) pair — the paper's §4.3 unrestricted-regions
// setting: 100 k-means centers x 20 side lengths from 0.1 to 2 degrees =
// 2,000 regions.
//
// Side lengths are sorted ascending at construction, so each center's
// regions form a nested chain (half-open CenteredSquare rects nest with the
// side), and side lengths whose member sets are identical to the next-smaller
// side at EVERY center are collapsed away (duplicate regions; the dedup is
// reported by Name()).
//
// Two counting backends (core::CountingBackend, identical integer counts):
//
//   kSparseAnnulus (default)  one KD-tree range report per center over the
//                             largest square; members are stored once as a
//                             point-major CSR of (point, annulus-rank)
//                             entries (core/annulus_index.h) and worlds are
//                             counted by scattering only positive points;
//   kDenseBits                one membership bit vector per region, each
//                             world costing one AND+popcount pass per region
//                             — the bit-identical reference.
#ifndef SFA_CORE_SQUARE_FAMILY_H_
#define SFA_CORE_SQUARE_FAMILY_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/annulus_index.h"
#include "core/region_family.h"
#include "geo/point.h"
#include "spatial/bitvector.h"
#include "spatial/kdtree.h"

namespace sfa::core {

struct SquareScanOptions {
  /// Scan centers. Typically stats::KMeans centers of the observation
  /// locations; any point set works.
  std::vector<geo::Point> centers;
  /// Side lengths in coordinate units (degrees for geographic data). Sorted
  /// ascending at construction; sides capturing duplicate member sets at
  /// every center are collapsed.
  std::vector<double> side_lengths;
  /// Counting backend; results are identical either way.
  CountingBackend backend = CountingBackend::kSparseAnnulus;

  /// The paper's default ladder: `count` side lengths evenly spaced in
  /// [min_side, max_side] (20 lengths from 0.1 to 2.0 degrees).
  static std::vector<double> DefaultSideLengths(double min_side = 0.1,
                                                double max_side = 2.0,
                                                uint32_t count = 20);
};

class SquareScanFamily : public RegionFamily {
 public:
  /// Builds the counting structures for all centers x (deduped) side lengths
  /// over `points`. Region index = center_index * num_sides + side_index with
  /// sides ascending.
  static Result<std::unique_ptr<SquareScanFamily>> Create(
      const std::vector<geo::Point>& points, const SquareScanOptions& options);

  size_t num_regions() const override {
    return centers_.size() * side_lengths_.size();
  }
  size_t num_points() const override { return num_points_; }
  RegionDescriptor Describe(size_t r) const override;
  uint64_t PointCount(size_t r) const override { return point_counts_[r]; }
  void CountPositives(const Labels& labels,
                      std::vector<uint64_t>* out) const override;
  /// Sparse backend: per-world positive scatter through the annulus CSR.
  /// Dense backend: memberships intersected against all B label bit vectors
  /// word-blocked, so membership words are streamed once per batch.
  void CountPositivesBatch(const Labels* const* batch, size_t num_worlds,
                           uint64_t* out) const override;
  /// Sparse backend: one class-tagged scatter per world through the annulus
  /// CSR. Dense backend: per-(world, class) indicator bit planes through the
  /// word-blocked SIMD popcount kernel.
  void CountClassesBatch(const uint8_t* const* class_worlds, size_t num_worlds,
                         uint32_t num_classes, uint64_t* out) const override;
  std::string Name() const override;

  size_t num_centers() const { return centers_.size(); }
  size_t num_sides() const { return side_lengths_.size(); }
  size_t CenterOfRegion(size_t r) const { return r / side_lengths_.size(); }
  double SideOfRegion(size_t r) const {
    return side_lengths_[r % side_lengths_.size()];
  }
  const std::vector<geo::Point>& centers() const { return centers_; }
  /// Surviving side lengths, ascending.
  const std::vector<double>& side_lengths() const { return side_lengths_; }
  CountingBackend backend() const { return backend_; }
  /// Heap bytes of the active membership representation (CSR index or dense
  /// bit vectors) — the quantity the sparse-vs-dense memory claims compare.
  size_t MembershipBytes() const;

 private:
  SquareScanFamily(const std::vector<geo::Point>& points,
                   const SquareScanOptions& options);

  std::vector<geo::Point> centers_;
  std::vector<double> side_lengths_;   // post-dedup, ascending
  size_t num_requested_sides_ = 0;     // pre-dedup ladder length
  CountingBackend backend_ = CountingBackend::kSparseAnnulus;
  AnnulusIndex annulus_;                          // sparse backend
  std::vector<spatial::BitVector> memberships_;   // dense backend
  std::vector<uint64_t> point_counts_;
  size_t num_points_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_SQUARE_FAMILY_H_
