#include "core/equal_odds.h"

#include "common/macros.h"

namespace sfa::core {

Result<EqualOddsResult> AuditEqualOdds(const data::OutcomeDataset& dataset,
                                       const FamilyFactory& make_family,
                                       const AuditOptions& options) {
  if (!dataset.has_actual()) {
    return Status::FailedPrecondition(
        "equal odds needs ground-truth labels (Y) in the dataset");
  }
  EqualOddsResult result;
  result.alpha = options.alpha;

  AuditOptions component = options;
  component.alpha = options.alpha / 2.0;  // Bonferroni across the two surfaces

  // TPR surface (equal opportunity).
  component.measure = FairnessMeasure::kEqualOpportunity;
  {
    SFA_ASSIGN_OR_RETURN(data::OutcomeDataset view,
                         BuildMeasureView(dataset, component.measure));
    SFA_ASSIGN_OR_RETURN(std::unique_ptr<RegionFamily> family,
                         make_family(view.locations()));
    SFA_ASSIGN_OR_RETURN(result.tpr,
                         Auditor(component).AuditView(view, *family));
  }

  // FPR surface (predictive equality); decorrelate the Monte Carlo stream.
  component.measure = FairnessMeasure::kPredictiveEquality;
  component.monte_carlo.seed = options.monte_carlo.seed ^ 0x9E3779B97F4A7C15ULL;
  {
    SFA_ASSIGN_OR_RETURN(data::OutcomeDataset view,
                         BuildMeasureView(dataset, component.measure));
    SFA_ASSIGN_OR_RETURN(std::unique_ptr<RegionFamily> family,
                         make_family(view.locations()));
    SFA_ASSIGN_OR_RETURN(result.fpr,
                         Auditor(component).AuditView(view, *family));
  }

  result.spatially_fair = result.tpr.spatially_fair && result.fpr.spatially_fair;
  return result;
}

}  // namespace sfa::core
