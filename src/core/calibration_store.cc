#include "core/calibration_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/process_util.h"
#include "common/string_util.h"

namespace sfa::core {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'A', 'N', 'U', 'L', 'L', 'D'};

uint64_t Fnv1a(const char* data, size_t n, uint64_t h = 0xcbf29ce484222325ULL) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof v); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, &v, sizeof v); }

/// Bounds-checked little cursor over a loaded frame.
struct Reader {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Read(void* out, size_t n) {
    if (n > size - pos) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof *v); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof *v); }
};

/// Zero bytes inserted between the key debug bytes and the world count so
/// the maxima array lands on an 8-byte boundary (the mmap path serves
/// doubles straight out of the mapping; the fixed prefix before the debug
/// bytes is 24 bytes, and the count field is 8, so only the debug length
/// perturbs alignment).
size_t FramePadLen(size_t debug_len) { return (8 - (debug_len % 8)) % 8; }

/// Offsets and metadata extracted by the structural frame parse.
struct ParsedFrame {
  size_t maxima_offset = 0;  ///< byte offset of the maxima array
  uint64_t num_worlds = 0;
  uint64_t worlds_requested = 0;
  uint32_t stop_reason_raw = 0;
};

/// Structural parse of a whole frame (magic, version, key identity, counts,
/// stop metadata, exact length) WITHOUT the checksum — the caller decides
/// whether the O(n) checksum is owed (full validation) or already vouched
/// for by the index signature. Returns nullptr on success, else the reject
/// reason.
const char* ParseFrameStructure(const char* data, size_t size,
                                const CalibrationKey& key, ParsedFrame* out) {
  if (size < sizeof kMagic + sizeof(uint32_t) + sizeof(uint64_t)) {
    return "truncated header";
  }
  Reader r{data, size - sizeof(uint64_t)};  // body sans checksum trailer
  char magic[sizeof kMagic];
  if (!r.Read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return "bad magic";
  }
  uint32_t version = 0;
  if (!r.ReadU32(&version)) return "truncated version";
  if (version != CalibrationStore::kFormatVersion) {
    return "unsupported format version";
  }
  uint64_t key_hash = 0;
  if (!r.ReadU64(&key_hash)) return "truncated key hash";
  uint32_t debug_len = 0;
  if (!r.ReadU32(&debug_len)) return "truncated key";
  if (debug_len > r.size - r.pos) return "truncated key";
  if (key_hash != key.hash || debug_len != key.debug.size() ||
      std::memcmp(data + r.pos, key.debug.data(), debug_len) != 0) {
    return "frame belongs to a different calibration key";
  }
  r.pos += debug_len;
  const size_t pad = FramePadLen(debug_len);
  if (pad > r.size - r.pos) return "truncated padding";
  r.pos += pad;
  uint64_t num_worlds = 0;
  if (!r.ReadU64(&num_worlds)) return "truncated world count";
  if (num_worlds > (r.size - r.pos) / sizeof(double)) {
    return "truncated maxima";
  }
  out->maxima_offset = r.pos;
  out->num_worlds = num_worlds;
  r.pos += static_cast<size_t>(num_worlds) * sizeof(double);
  if (!r.ReadU64(&out->worlds_requested)) return "truncated stop metadata";
  if (!r.ReadU32(&out->stop_reason_raw)) return "truncated stop metadata";
  if (out->worlds_requested < num_worlds) {
    return "worlds_requested below completed world count";
  }
  if (out->stop_reason_raw >
      static_cast<uint32_t>(McStopReason::kCiAboveAlpha)) {
    return "unknown stop reason";
  }
  if (r.pos != r.size) return "trailing bytes";
  return nullptr;
}

/// FNV-1a over everything before the trailer, compared against the trailer.
bool FrameChecksumOk(const char* data, size_t size) {
  uint64_t checksum = 0;
  std::memcpy(&checksum, data + size - sizeof checksum, sizeof checksum);
  return Fnv1a(data, size - sizeof checksum) == checksum;
}

/// Writer pid embedded in a temp name "<frame>.tmp.<pid>.<ptr>.<nonce>";
/// 0 when the name doesn't parse (foreign temps are then judged on age).
int TempWriterPid(const std::string& filename) {
  const size_t tag = filename.find(".tmp.");
  if (tag == std::string::npos) return 0;
  return std::atoi(filename.c_str() + tag + 5);
}

/// Milliseconds since the file's mtime on the file clock, clamped >= 0.
double FileAgeMs(const std::filesystem::path& path, std::error_code& ec) {
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return 0.0;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::filesystem::file_time_type::clock::now() - mtime)
                        .count();
  return ms < 0.0 ? 0.0 : ms;
}

}  // namespace

CalibrationStore::CalibrationStore(Options options)
    : options_(std::move(options)), backoff_rng_(options_.backoff_seed) {
  // SFA_STORE_MMAP=0 is the operational escape hatch: flip the whole fleet
  // back to the copy path without a rebuild (results stay bit-identical).
  const char* env = std::getenv("SFA_STORE_MMAP");
  mmap_enabled_ =
      options_.use_mmap && !(env != nullptr && env[0] == '0' && env[1] == '\0');
}

void CalibrationStore::BuildIndex() const {
  std::error_code ec;
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    if (entry.path().extension() != ".nulldist") continue;
    std::error_code entry_ec;
    IndexEntry ie;
    ie.size = entry.file_size(entry_ec);
    if (entry_ec) continue;
    ie.mtime = entry.last_write_time(entry_ec);
    if (entry_ec) continue;
    index_.emplace(entry.path().filename().string(), std::move(ie));
  }
}

void CalibrationStore::ForgetIndexEntryLocked(
    const std::string& filename) const {
  auto it = index_.find(filename);
  if (it == index_.end()) return;
  if (it->second.mapped != nullptr) {
    --stats_.mmap_frames;
    stats_.mmap_bytes -= it->second.mapped->file.size();
  }
  index_.erase(it);
}

void CalibrationStore::TouchForLru(const std::string& path) const {
  const std::string filename =
      std::filesystem::path(path).filename().string();
  const auto now = std::filesystem::file_time_type::clock::now();
  std::error_code touch_ec;
  // `store.touch` simulates a read-only directory/filesystem (tests run as
  // root, where chmod can't make the real touch fail).
  SFA_FAILPOINT_WITH("store.touch", {
    if (fp_action.kind == FailpointActionKind::kError) {
      touch_ec = std::make_error_code(std::errc::read_only_file_system);
    }
  });
  if (!touch_ec) std::filesystem::last_write_time(path, now, touch_ec);
  if (!touch_ec) {
    // Fold the touched mtime back into the signature (re-stat: the
    // filesystem may round the timestamp) so our own touch never reads as a
    // foreign rewrite on the next hit.
    std::error_code stat_ec;
    const auto mtime = std::filesystem::last_write_time(path, stat_ec);
    std::unique_lock<std::mutex> lock(mu_);
    auto it = index_.find(filename);
    if (it != index_.end() && !stat_ec) it->second.mtime = mtime;
    return;
  }
  // Read-only directory/filesystem: degrade to index-tracked in-memory
  // recency — EvictToBudget orders by max(mtime, last_used), so LRU still
  // works — and count the condition instead of retrying on the hit path.
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.touch_failures;
  auto it = index_.find(filename);
  if (it != index_.end()) it->second.last_used = now;
}

NullDistributionView CalibrationStore::ViewOf(
    const std::shared_ptr<const MappedFrame>& frame) {
  // The aliasing shared_ptr pins the whole mapping for the view's lifetime;
  // POSIX keeps the pages valid even after the path is unlinked or renamed
  // over, so eviction/re-Store can never invalidate an outstanding view.
  return NullDistributionView(
      frame->maxima, std::shared_ptr<const void>(frame, frame.get()),
      frame->worlds_requested, frame->stop_reason);
}

Result<std::unique_ptr<CalibrationStore>> CalibrationStore::Open(
    const Options& options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("calibration store directory is empty");
  }
  std::error_code ec;
  const std::filesystem::path dir(options.directory);
  if (!std::filesystem::exists(dir, ec)) {
    if (!options.create_if_missing) {
      return Status::NotFound(
          StrFormat("calibration store directory '%s' does not exist",
                    options.directory.c_str()));
    }
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IOError(
          StrFormat("cannot create calibration store directory '%s': %s",
                    options.directory.c_str(), ec.message().c_str()));
    }
  } else if (!std::filesystem::is_directory(dir, ec)) {
    return Status::InvalidArgument(
        StrFormat("calibration store path '%s' is not a directory",
                  options.directory.c_str()));
  }
  auto store = std::unique_ptr<CalibrationStore>(new CalibrationStore(options));
  // Crash recovery runs on EVERY open (not only when sweep_on_open is set):
  // a restarted or peer process is exactly when orphans from a killed writer
  // must be cleared, and the sweep costs one directory listing.
  store->RecoverySweep();
  // Seed the in-memory index with the surviving frames' signatures so the
  // warm path never has to re-discover the directory; entries start
  // unvalidated (the first load of each frame still earns its checksum).
  store->BuildIndex();
  if (options.sweep_on_open && options.max_bytes > 0) {
    // Startup GC: bound a long-lived directory before serving from it.
    // max_bytes == 0 means unbounded, so the sweep is a no-op then —
    // EvictToBudget(0) would wipe every frame. A sweep failure is an IO
    // problem worth surfacing at Open time (the directory was just proven
    // accessible).
    auto evicted = store->EvictToBudget(options.max_bytes);
    if (!evicted.ok()) {
      return evicted.status().WithContext("startup eviction sweep");
    }
  }
  return store;
}

Result<uint64_t> CalibrationStore::EvictToBudget(uint64_t budget_bytes) const {
  SFA_FAILPOINT("store.evict");
  // Orphaned writer temps were invisible to the byte accounting (a worker
  // killed between fopen and rename leaked its .tmp.* forever); reap them
  // first, and keep quarantine/ inside its own budget after the frame sweep.
  SweepOrphanTemps();
  struct Frame {
    std::filesystem::path path;
    uint64_t size = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Frame> frames;
  uint64_t total_bytes = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    if (entry.path().extension() != ".nulldist") continue;
    std::error_code entry_ec;
    Frame frame;
    frame.path = entry.path();
    frame.size = entry.file_size(entry_ec);
    if (entry_ec) continue;  // raced a concurrent eviction/rename
    frame.mtime = entry.last_write_time(entry_ec);
    if (entry_ec) continue;
    total_bytes += frame.size;
    frames.push_back(std::move(frame));
  }
  if (ec) {
    return Status::IOError(
        StrFormat("cannot list calibration store directory '%s': %s",
                  options_.directory.c_str(), ec.message().c_str()));
  }

  // Frames whose LRU mtime touch failed (read-only filesystems) carry their
  // recency in the index instead; fold it in so they aren't unfairly evicted
  // as stale. file_time_type on both sides keeps the clocks comparable.
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (Frame& frame : frames) {
      auto it = index_.find(frame.path.filename().string());
      if (it != index_.end() && it->second.last_used > frame.mtime) {
        frame.mtime = it->second.last_used;
      }
    }
  }

  // Oldest mtime first; name breaks ties so the sweep order is deterministic
  // on filesystems with coarse timestamps.
  std::sort(frames.begin(), frames.end(), [](const Frame& a, const Frame& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.native() < b.path.native();
  });

  uint64_t deleted = 0;
  uint64_t reclaimed = 0;
  std::vector<std::string> deleted_names;
  for (const Frame& frame : frames) {
    if (total_bytes <= budget_bytes) break;
    std::error_code remove_ec;
    if (std::filesystem::remove(frame.path, remove_ec) && !remove_ec) {
      ++deleted;
      reclaimed += frame.size;
      deleted_names.push_back(frame.path.filename().string());
    }
    // A failed or raced removal still reduces the accounted total: the goal
    // is a bounded directory, and the next sweep re-measures from disk.
    total_bytes -= frame.size;
  }
  if (deleted > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.evicted_files += deleted;
    stats_.evicted_bytes += reclaimed;
    // Outstanding views over evicted frames stay valid (their shared backing
    // pins the pages); only the index forgets them.
    for (const std::string& name : deleted_names) ForgetIndexEntryLocked(name);
  }
  EnforceQuarantineBudget();
  return deleted;
}

void CalibrationStore::SweepOrphanTemps() const {
  std::error_code ec;
  uint64_t reaped = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    const int writer = TempWriterPid(name);
    std::error_code age_ec;
    const double age_ms = FileAgeMs(entry.path(), age_ec);
    // Dead writer: reap immediately (the rename it never reached will never
    // come). Live or unknown writer: only past the grace window — a healthy
    // write's temp lives microseconds, so anything older is wedged, and the
    // worst case of a wrong guess is the writer's rename failing ENOENT,
    // which Store already treats as a retryable IOError.
    const bool orphaned =
        (writer > 0 && !ProcessAlive(writer)) ||
        (!age_ec && options_.temp_reap_grace_ms > 0.0 &&
         age_ms > options_.temp_reap_grace_ms);
    if (!orphaned) continue;
    std::error_code rm_ec;
    if (std::filesystem::remove(entry.path(), rm_ec) && !rm_ec) ++reaped;
  }
  if (reaped > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.temps_reaped += reaped;
  }
}

void CalibrationStore::EnforceQuarantineBudget() const {
  if (options_.quarantine_max_bytes == 0) return;
  struct Entry {
    std::filesystem::path path;
    uint64_t size = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Entry> entries;
  uint64_t total_bytes = 0;
  std::error_code ec;
  for (const auto& item :
       std::filesystem::directory_iterator(QuarantineDir(), ec)) {
    std::error_code item_ec;
    if (!item.is_regular_file(item_ec) || item_ec) continue;
    Entry e;
    e.path = item.path();
    e.size = item.file_size(item_ec);
    if (item_ec) continue;
    e.mtime = item.last_write_time(item_ec);
    if (item_ec) continue;
    total_bytes += e.size;
    entries.push_back(std::move(e));
  }
  if (ec) return;  // missing/unreadable quarantine dir: nothing to bound
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.native() < b.path.native();
  });
  uint64_t deleted = 0;
  uint64_t reclaimed = 0;
  for (const Entry& e : entries) {
    if (total_bytes <= options_.quarantine_max_bytes) break;
    std::error_code rm_ec;
    if (std::filesystem::remove(e.path, rm_ec) && !rm_ec) {
      ++deleted;
      reclaimed += e.size;
    }
    total_bytes -= e.size;
  }
  if (deleted > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.quarantine_evicted_files += deleted;
    stats_.quarantine_evicted_bytes += reclaimed;
  }
}

void CalibrationStore::RecoverySweep() const {
  SweepOrphanTemps();
  const uint64_t leases = ReclaimStaleLeases(LeaseDir(), options_.lease_ttl_ms);
  if (leases > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.leases_reclaimed += leases;
  }
  EnforceQuarantineBudget();
}

std::string CalibrationStore::FilePathFor(const CalibrationKey& key) const {
  // Hash + debug-hash: CalibrationKey equality compares both fields, so keys
  // that collide on the content hash alone still map to distinct files.
  const uint64_t debug_hash = Fnv1a(key.debug.data(), key.debug.size());
  return (std::filesystem::path(options_.directory) /
          StrFormat("%016llx-%016llx.nulldist",
                    static_cast<unsigned long long>(key.hash),
                    static_cast<unsigned long long>(debug_hash)))
      .string();
}

std::string CalibrationStore::QuarantineDir() const {
  return (std::filesystem::path(options_.directory) / "quarantine").string();
}

std::string CalibrationStore::LeaseDir() const {
  return (std::filesystem::path(options_.directory) / "leases").string();
}

std::string CalibrationStore::LeasePathFor(const CalibrationKey& key) const {
  // Same stem as FilePathFor so a lease maps 1:1 to the frame it guards.
  const uint64_t debug_hash = Fnv1a(key.debug.data(), key.debug.size());
  return (std::filesystem::path(LeaseDir()) /
          StrFormat("%016llx-%016llx.lease",
                    static_cast<unsigned long long>(key.hash),
                    static_cast<unsigned long long>(debug_hash)))
      .string();
}

Result<FileLease::AcquireOutcome> CalibrationStore::TryAcquireLease(
    const CalibrationKey& key) const {
  std::error_code ec;
  std::filesystem::create_directories(LeaseDir(), ec);
  if (ec) {
    return Status::IOError(StrFormat("cannot create lease directory '%s': %s",
                                     LeaseDir().c_str(),
                                     ec.message().c_str()));
  }
  auto outcome =
      FileLease::TryAcquire(LeasePathFor(key), options_.lease_ttl_ms,
                            options_.lease_heartbeat_interval_ms);
  if (outcome.ok()) {
    std::unique_lock<std::mutex> lock(mu_);
    if (outcome->lease != nullptr) {
      ++stats_.leases_acquired;
      if (outcome->takeover) {
        ++stats_.lease_takeovers;
        ++stats_.leases_reclaimed;
      }
    } else {
      ++stats_.lease_contention;
    }
  }
  return outcome;
}

bool CalibrationStore::QuarantineFrame(const std::string& path) const {
  // Best-effort: losing the race to another process quarantining (or
  // re-storing over) the same frame is fine — the goal is merely that the
  // defective bytes stop being re-parsed on every load.
  std::error_code ec;
  const std::filesystem::path qdir(QuarantineDir());
  std::filesystem::create_directories(qdir, ec);
  if (ec) return false;
  const std::filesystem::path src(path);
  std::filesystem::rename(src, qdir / src.filename(), ec);
  return !ec;
}

Result<NullDistribution> CalibrationStore::Load(
    const CalibrationKey& key) const {
  SFA_FAILPOINT("store.load");
  const std::string path = FilePathFor(key);
  const std::string filename = std::filesystem::path(path).filename().string();

  {
    // Breaker open: the disk is presumed sick, so don't touch it at all.
    // NotFound keeps the cache's miss→recompute contract — memory-only
    // serving until a Store probe closes the breaker.
    std::unique_lock<std::mutex> lock(mu_);
    if (breaker_open_) {
      ++stats_.breaker_fast_fails;
      ++stats_.load_misses;
      return Status::NotFound("calibration store circuit breaker is open");
    }
  }

  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::unique_lock<std::mutex> lock(mu_);
      ForgetIndexEntryLocked(filename);  // evicted/quarantined by a peer
      ++stats_.load_misses;
      return Status::NotFound("no persisted calibration for key");
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
      return Status::IOError(
          StrFormat("failed reading calibration frame '%s'", path.c_str()));
    }
  }
  std::error_code sig_ec;
  const auto mtime = std::filesystem::last_write_time(path, sig_ec);

  // Validation failures all land here: quarantine the defective frame so it
  // is parsed (and rejected) at most once, count the rejection, and report
  // NotFound so the caller falls back to recompute.
  const auto reject = [&](const char* why) -> Status {
    const bool moved =
        options_.quarantine_rejects ? QuarantineFrame(path) : false;
    std::unique_lock<std::mutex> lock(mu_);
    ForgetIndexEntryLocked(filename);
    ++stats_.load_rejected;
    if (moved) ++stats_.quarantined;
    return Status::NotFound(
        StrFormat("persisted calibration '%s' rejected: %s", path.c_str(), why));
  };

  ParsedFrame frame;
  if (const char* why =
          ParseFrameStructure(bytes.data(), bytes.size(), key, &frame)) {
    return reject(why);
  }

  // Warm-hit revalidation gating: a frame this process already fully
  // validated, unchanged per its (size, mtime) index signature, skips the
  // O(n) re-checksum (the structural parse above stays — it is O(header)).
  // Any signature drift — a foreign rewrite — earns a full re-validation.
  bool checksum_needed = true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = index_.find(filename);
    if (it != index_.end() && it->second.validated && !sig_ec &&
        it->second.size == bytes.size() && it->second.mtime == mtime) {
      checksum_needed = false;
      ++stats_.index_hits;
    }
  }
  if (checksum_needed && !FrameChecksumOk(bytes.data(), bytes.size())) {
    return reject("checksum mismatch");
  }

  std::vector<double> maxima(frame.num_worlds);
  if (frame.num_worlds > 0) {
    std::memcpy(maxima.data(), bytes.data() + frame.maxima_offset,
                static_cast<size_t>(frame.num_worlds) * sizeof(double));
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.load_hits;
    IndexEntry& entry = index_[filename];
    const bool sig_changed =
        entry.size != bytes.size() || (!sig_ec && entry.mtime != mtime);
    if (sig_changed && entry.mapped != nullptr) {
      // The mapping belongs to an older generation of this frame.
      --stats_.mmap_frames;
      stats_.mmap_bytes -= entry.mapped->file.size();
      entry.mapped.reset();
    }
    entry.size = bytes.size();
    if (!sig_ec) entry.mtime = mtime;
    entry.validated = !sig_ec;  // no mtime, no signature to vouch with
  }
  // LRU touch (best-effort): a served frame counts as recently used, so
  // EvictToBudget's mtime ordering approximates true LRU, not FIFO.
  TouchForLru(path);
  // The ctor re-sorts descending — a no-op for a well-formed frame, and it
  // restores the class invariant even if a hand-edited file reordered values.
  return NullDistribution(std::move(maxima), frame.worlds_requested,
                          static_cast<McStopReason>(frame.stop_reason_raw));
}

Result<NullDistributionView> CalibrationStore::LoadView(
    const CalibrationKey& key) const {
  if (!mmap_enabled_) return Load(key);
  const std::string path = FilePathFor(key);
  const std::string filename = std::filesystem::path(path).filename().string();

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (breaker_open_) {
      ++stats_.breaker_fast_fails;
      ++stats_.load_misses;
      return Status::NotFound("calibration store circuit breaker is open");
    }
  }

  // The copy path's read-failure injection covers this path too: an armed
  // `store.load` error makes the zero-copy hit fail exactly like a failed
  // read would, so callers exercise the same recompute fallback.
  SFA_FAILPOINT("store.load");

  // One stat is the whole disk cost of the warm path: it refreshes the
  // (size, mtime) signature that detects foreign-process rewrites.
  std::error_code size_ec;
  std::error_code mtime_ec;
  const uint64_t size = std::filesystem::file_size(path, size_ec);
  const auto mtime = std::filesystem::last_write_time(path, mtime_ec);
  if (size_ec || mtime_ec) {
    std::unique_lock<std::mutex> lock(mu_);
    ForgetIndexEntryLocked(filename);  // evicted/quarantined by a peer
    ++stats_.load_misses;
    return Status::NotFound("no persisted calibration for key");
  }

  std::shared_ptr<const MappedFrame> frame;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = index_.find(filename);
    if (it != index_.end() && it->second.mapped != nullptr) {
      IndexEntry& entry = it->second;
      if (entry.validated && entry.size == size && entry.mtime == mtime) {
        // Zero-copy warm hit: no read, no checksum, no allocation beyond
        // the view's control-block bump.
        frame = entry.mapped;
        ++stats_.index_hits;
        ++stats_.mmap_loads;
        ++stats_.load_hits;
      } else {
        // A peer rewrote the frame since we mapped it: retire the stale
        // mapping (outstanding views keep their pages) and remap below.
        ++stats_.remap_races;
        --stats_.mmap_frames;
        stats_.mmap_bytes -= entry.mapped->file.size();
        entry.mapped.reset();
        entry.validated = false;
      }
    }
  }
  if (frame != nullptr) {
    TouchForLru(path);
    return ViewOf(frame);
  }

  // Cold (or remap) path. Mapping failures — injected via the `store.mmap`
  // failpoint or real (exotic filesystems, mapping limits) — degrade to the
  // copy path, which serves identical bytes.
  SFA_FAILPOINT_WITH("store.mmap", {
    if (fp_action.kind == FailpointActionKind::kError) return Load(key);
  });
  auto mapped = MmapFile::Map(path);
  if (!mapped.ok()) {
    if (mapped.status().IsNotFound()) {
      std::unique_lock<std::mutex> lock(mu_);
      ForgetIndexEntryLocked(filename);
      ++stats_.load_misses;
      return Status::NotFound("no persisted calibration for key");
    }
    return Load(key);
  }

  const auto reject = [&](const char* why) -> Status {
    const bool moved =
        options_.quarantine_rejects ? QuarantineFrame(path) : false;
    std::unique_lock<std::mutex> lock(mu_);
    ForgetIndexEntryLocked(filename);
    ++stats_.load_rejected;
    if (moved) ++stats_.quarantined;
    return Status::NotFound(
        StrFormat("persisted calibration '%s' rejected: %s", path.c_str(), why));
  };

  // One-time validation of this mapped generation: structure, key identity,
  // checksum. Subsequent hits are vouched for by the index signature.
  ParsedFrame parsed;
  if (const char* why =
          ParseFrameStructure(mapped->data(), mapped->size(), key, &parsed)) {
    return reject(why);
  }
  if (!FrameChecksumOk(mapped->data(), mapped->size())) {
    return reject("checksum mismatch");
  }
  if (parsed.maxima_offset % alignof(double) != 0) {
    // Cannot happen for a frame this version wrote (the pad aligns the
    // array), but a forged length field could; the copy path is immune.
    return Load(key);
  }
  const auto* maxima =
      reinterpret_cast<const double*>(mapped->data() + parsed.maxima_offset);
  for (uint64_t i = 1; i < parsed.num_worlds; ++i) {
    if (maxima[i - 1] < maxima[i]) {
      // The mapping is read-only, so the copy path's defensive re-sort is
      // impossible here; hand-reordered frames take the copy path instead,
      // which yields the same (re-sorted) distribution.
      return Load(key);
    }
  }

  auto owned = std::make_shared<MappedFrame>();
  owned->maxima = std::span<const double>(maxima, parsed.num_worlds);
  owned->worlds_requested = parsed.worlds_requested;
  owned->stop_reason = static_cast<McStopReason>(parsed.stop_reason_raw);
  owned->file = std::move(*mapped);
  frame = owned;

  {
    std::unique_lock<std::mutex> lock(mu_);
    IndexEntry& entry = index_[filename];
    if (entry.mapped != nullptr) {
      // A concurrent LoadView won the remap race; serve its mapping (both
      // validated the same generation) and drop ours.
      frame = entry.mapped;
    } else {
      entry.mapped = frame;
      entry.size = frame->file.size();
      entry.mtime = mtime;
      entry.validated = true;
      ++entry.generation;
      ++stats_.mmap_frames;
      stats_.mmap_bytes += frame->file.size();
    }
    ++stats_.mmap_loads;
    ++stats_.load_hits;
  }
  TouchForLru(path);
  return ViewOf(frame);
}

Status CalibrationStore::Store(const CalibrationKey& key,
                               const NullDistribution& distribution) const {
  const auto now = [] { return std::chrono::steady_clock::now(); };

  // Breaker gate: while open, fail fast without touching the disk — except
  // that once the probe window has elapsed, exactly one caller is admitted
  // as a probe whose outcome decides whether the breaker closes.
  bool probing = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (breaker_open_) {
      if (!breaker_probing_ && now() >= breaker_probe_at_) {
        breaker_probing_ = probing = true;
      } else {
        ++stats_.breaker_fast_fails;
        return Status::ResourceExhausted(
            "calibration store circuit breaker is open");
      }
    }
  }

  // Bounded retry with exponential backoff + seeded jitter. Only IOError is
  // transient; any other code (e.g. an injected disk-full ResourceExhausted)
  // fails the call immediately so the breaker sees it sooner.
  Status last;
  for (uint32_t attempt = 0;; ++attempt) {
    if (attempt > 0) {
      double wait_ms = options_.backoff_initial_ms;
      for (uint32_t k = 1; k < attempt && wait_ms < options_.backoff_max_ms;
           ++k) {
        wait_ms *= 2.0;
      }
      wait_ms = std::min(wait_ms, options_.backoff_max_ms);
      {
        std::unique_lock<std::mutex> lock(mu_);
        wait_ms *= backoff_rng_.Uniform(0.5, 1.0);
        ++stats_.store_retries;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait_ms));
    }
    last = WriteFrameOnce(key, distribution);
    if (last.ok() || !last.IsIOError() || attempt >= options_.store_retries) {
      break;
    }
  }

  // Breaker verdict.
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (last.ok()) {
      consecutive_store_failures_ = 0;
      breaker_open_ = false;  // a successful probe (or write) closes it
      breaker_probing_ = false;
      ++stats_.stores;
      // A successful write starts a new frame generation: retire any
      // mapping of the replaced frame (readers still holding views keep
      // their pages; the next LoadView maps the new generation) and reset
      // the validation vouch — the first load still earns its checksum, so
      // bytes torn BELOW the write call (kernel/disk corruption, the
      // `store.write` corrupt drill) can never be served on the index's
      // word.
      const std::string filename =
          std::filesystem::path(FilePathFor(key)).filename().string();
      IndexEntry& entry = index_[filename];
      if (entry.mapped != nullptr) {
        --stats_.mmap_frames;
        stats_.mmap_bytes -= entry.mapped->file.size();
        entry.mapped.reset();
      }
      ++entry.generation;
      entry.validated = false;
    } else {
      ++stats_.store_failures;
      ++consecutive_store_failures_;
      if (probing) {
        // Failed probe: stay open, re-arm the probe timer.
        breaker_probing_ = false;
        breaker_probe_at_ =
            now() + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            options_.breaker_probe_after_ms));
      } else if (!breaker_open_ && options_.breaker_failure_threshold > 0 &&
                 consecutive_store_failures_ >=
                     options_.breaker_failure_threshold) {
        breaker_open_ = true;
        ++stats_.breaker_trips;
        breaker_probe_at_ =
            now() + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            options_.breaker_probe_after_ms));
      }
    }
  }
  return last;
}

Status CalibrationStore::WriteFrameOnce(
    const CalibrationKey& key, const NullDistribution& distribution) const {
  std::string frame;
  const std::span<const double> maxima = distribution.sorted_max();
  frame.reserve(64 + key.debug.size() + maxima.size() * sizeof(double));
  AppendRaw(&frame, kMagic, sizeof kMagic);
  AppendU32(&frame, kFormatVersion);
  AppendU64(&frame, key.hash);
  AppendU32(&frame, static_cast<uint32_t>(key.debug.size()));
  AppendRaw(&frame, key.debug.data(), key.debug.size());
  // v4: zero pad so the maxima array that follows the world count is
  // 8-aligned — the mmap path serves doubles in place.
  frame.append(FramePadLen(key.debug.size()), '\0');
  AppendU64(&frame, maxima.size());
  if (!maxima.empty()) {
    AppendRaw(&frame, maxima.data(), maxima.size() * sizeof(double));
  }
  // v3: adaptive-stop metadata. For full runs this is (size, kNone), so
  // every frame carries it and the loader needs no conditional layout.
  AppendU64(&frame, distribution.worlds_requested());
  AppendU32(&frame, static_cast<uint32_t>(distribution.stop_reason()));
  AppendU64(&frame, Fnv1a(frame.data(), frame.size()));

  // Torn-write drill hook: an error action fails this attempt (retryable);
  // truncate/corrupt damage the bytes that then land on disk "successfully" —
  // exactly the crash shape the Load checksum/quarantine path must absorb.
  SFA_FAILPOINT_MUTATE("store.write", &frame);

  const std::string path = FilePathFor(key);
  uint64_t nonce;
  {
    std::unique_lock<std::mutex> lock(mu_);
    nonce = ++temp_counter_;
  }
  // Same-directory temp + rename: rename(2) is atomic within a filesystem,
  // so concurrent readers never observe a partial frame. The temp name is
  // unique per (process, store instance, write) — pid included because two
  // processes sharing the directory can allocate stores at the same address
  // — so concurrent writers of one key never stomp each other's temp file.
  const std::string temp = StrFormat(
      "%s.tmp.%d.%p.%llu", path.c_str(), static_cast<int>(::getpid()),
      static_cast<const void*>(this), static_cast<unsigned long long>(nonce));

  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(
        StrFormat("cannot open '%s' for writing", temp.c_str()));
  }
  const size_t written = std::fwrite(frame.data(), 1, frame.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != frame.size() || !flushed) {
    std::remove(temp.c_str());
    return Status::IOError(
        StrFormat("short write persisting calibration to '%s'", temp.c_str()));
  }
  SFA_FAILPOINT_WITH("store.rename", {
    if (fp_action.kind == FailpointActionKind::kError) {
      std::remove(temp.c_str());
      return fp_action.status;
    }
  });
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::remove(temp.c_str());
    return Status::IOError(StrFormat("cannot rename '%s' into '%s': %s",
                                     temp.c_str(), path.c_str(),
                                     ec.message().c_str()));
  }
  return Status::OK();
}

CalibrationStore::Stats CalibrationStore::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.breaker_open = breaker_open_;
  return snapshot;
}

}  // namespace sfa::core
