#include "core/calibration_cache.h"

#include <bit>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/bernoulli_statistic.h"
#include "core/calibration_store.h"
#include "core/labels.h"
#include "core/scan_statistic.h"

namespace sfa::core {

namespace {

/// SplitMix64 finalizer as the mixing step of a running 64-bit content hash:
/// cheap, well-dispersed, and endian-independent for the integer fields we
/// feed it.
uint64_t Mix(uint64_t h, uint64_t value) {
  uint64_t z = (h ^ value) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t MixBytes(uint64_t h, const char* data, size_t n) {
  uint64_t word = 0;
  size_t filled = 0;
  for (size_t i = 0; i < n; ++i) {
    word |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
            << (8 * filled);
    if (++filled == 8) {
      h = Mix(h, word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) h = Mix(h, word | (static_cast<uint64_t>(filled) << 56));
  return Mix(h, n);
}

}  // namespace

uint64_t FamilyFingerprint(const RegionFamily& family) {
  // Structural fingerprint of the family: its self-description, the full
  // per-region point-count profile, the per-cell profile when the family is
  // cell-decomposable (the closed-form sampler draws one binomial per cell,
  // so cell structure shapes the RNG stream) — and, because none of those
  // capture *membership* (two kNN families over different cities share every
  // per-region count), the count vectors of a few fixed pseudo-random probe
  // worlds. The null distribution of max Λ is a functional of how region
  // counts respond to random labelings, so probing with deterministic label
  // worlds fingerprints exactly the structure that shapes it; each probe
  // costs one world-equivalent CountPositives pass, noise against the W-1
  // worlds a key collision would wrongly share.
  uint64_t fp = 0x5fa0c0de5fa0c0deULL;
  const std::string name = family.Name();
  fp = MixBytes(fp, name.data(), name.size());
  fp = Mix(fp, family.num_points());
  fp = Mix(fp, family.num_regions());
  for (size_t r = 0; r < family.num_regions(); ++r) {
    fp = Mix(fp, family.PointCount(r));
  }
  if (const CellDecomposition* cells = family.cell_decomposition()) {
    fp = Mix(fp, cells->cell_counts.size());
    for (uint32_t c : cells->cell_counts) fp = Mix(fp, c);
    fp = Mix(fp, cells->num_outside);
  }
  {
    // Fixed probe seed, unrelated to any Monte Carlo stream: the probes are
    // structural identity, not simulation randomness.
    Rng probe_rng(0x9d0be5fa0c0de001ULL);
    std::vector<uint64_t> counts;
    for (int probe = 0; probe < 3; ++probe) {
      const Labels labels =
          Labels::SampleBernoulli(family.num_points(), 0.5, &probe_rng);
      family.CountPositives(labels, &counts);
      for (uint64_t c : counts) fp = Mix(fp, c);
    }
  }
  return fp;
}

CalibrationKey MakeCalibrationKey(const RegionFamily& family,
                                  const ScanStatistic& statistic,
                                  const MonteCarloOptions& options) {
  return MakeCalibrationKey(family, FamilyFingerprint(family), statistic,
                            options);
}

CalibrationKey MakeCalibrationKey(const RegionFamily& family,
                                  uint64_t fingerprint,
                                  const ScanStatistic& statistic,
                                  const MonteCarloOptions& options) {
  SFA_DCHECK(statistic.total_n() == family.num_points());
  const uint64_t fp = fingerprint;
  const std::string name = family.Name();
  const std::string stat_fp = statistic.Fingerprint();

  // Draw-relevant inputs. engine / batch_size / parallel are intentionally
  // absent: the world engine is bit-identical across them (core/mc_engine.h).
  // The statistic fingerprint carries everything statistic-specific that
  // shapes the draws or the arithmetic (kind, direction/class config, view
  // totals beyond N).
  uint64_t h = fp;
  h = Mix(h, statistic.total_n());
  h = MixBytes(h, stat_fp.data(), stat_fp.size());
  h = Mix(h, options.num_worlds);
  h = Mix(h, static_cast<uint64_t>(options.null_model));
  h = Mix(h, options.seed);
  h = Mix(h, options.closed_form_cells ? 1u : 0u);
  if (options.adaptive.enabled) {
    // Adaptive runs may legitimately complete FEWER worlds than num_worlds,
    // and where they stop depends on (observed, alpha, min_worlds,
    // check_every, z). Hashing those keeps an early-stopped calibration from
    // silently aliasing a full-precision one — a full-num_worlds request
    // recomputes instead of inheriting a truncated null. The cost: adaptive
    // calibrations are per-(observed, alpha), so alpha sweeps over one
    // dataset do not share them (see AdaptiveMcOptions in significance.h).
    h = Mix(h, 0xada9717eULL);  // domain marker: adaptive key space
    h = Mix(h, std::bit_cast<uint64_t>(options.adaptive.observed));
    h = Mix(h, std::bit_cast<uint64_t>(options.adaptive.alpha));
    h = Mix(h, std::bit_cast<uint64_t>(options.adaptive.z));
    h = Mix(h, options.adaptive.min_worlds);
    h = Mix(h, options.adaptive.check_every);
  }

  CalibrationKey key;
  key.hash = h;
  key.debug = StrFormat(
      "family=\"%s\" regions=%zu N=%llu stat=\"%s\" worlds=%u null=%s "
      "seed=%llu cf=%d fp=%016llx",
      name.c_str(), family.num_regions(),
      static_cast<unsigned long long>(statistic.total_n()), stat_fp.c_str(),
      options.num_worlds, NullModelToString(options.null_model),
      static_cast<unsigned long long>(options.seed),
      options.closed_form_cells ? 1 : 0, static_cast<unsigned long long>(fp));
  if (options.adaptive.enabled) {
    key.debug += StrFormat(
        " adaptive(obs=%.17g alpha=%.17g min=%u every=%u z=%.17g)",
        options.adaptive.observed, options.adaptive.alpha,
        options.adaptive.min_worlds, options.adaptive.check_every,
        options.adaptive.z);
  }
  return key;
}

CalibrationKey MakeCalibrationKey(const RegionFamily& family, uint64_t total_n,
                                  uint64_t total_p,
                                  stats::ScanDirection direction,
                                  const MonteCarloOptions& options) {
  return MakeCalibrationKey(family, FamilyFingerprint(family), total_n,
                            total_p, direction, options);
}

CalibrationKey MakeCalibrationKey(const RegionFamily& family,
                                  uint64_t fingerprint, uint64_t total_n,
                                  uint64_t total_p,
                                  stats::ScanDirection direction,
                                  const MonteCarloOptions& options) {
  const BernoulliScanStatistic statistic(direction, total_n, total_p);
  return MakeCalibrationKey(family, fingerprint, statistic, options);
}

CalibrationCache::~CalibrationCache() { FlushStore(); }

void CalibrationCache::AttachStore(std::shared_ptr<CalibrationStore> store) {
  // Contractually before concurrent use, so plain assignment is safe and
  // GetOrCompute may read store_ without a lock.
  SFA_CHECK_MSG(store_ == nullptr, "CalibrationCache store attached twice");
  store_ = std::move(store);
}

void CalibrationCache::FlushStore() {
  // Crash drill: an error action skips the flush wait, modeling a process
  // that died before its write-behind persists landed. Safe to skip — the
  // queued tasks own their store/value by shared_ptr and still run; only the
  // "durable before return" promise is lost, which is exactly the drill.
  SFA_FAILPOINT_WITH("cache.flush", {
    if (fp_action.kind == FailpointActionKind::kError) return;
  });
  // Helping wait: safe even when called from a pool task (e.g. a pipeline
  // tearing down inside a scheduled request).
  DefaultThreadPool().WaitGroup(&store_writes_group_);
}

Result<std::shared_ptr<const NullDistribution>> CalibrationCache::GetOrCompute(
    const CalibrationKey& key,
    const std::function<Result<NullDistribution>()>& compute,
    Source* source) {
  return GetOrCompute(
      key, [&compute](const ComputeContext&) { return compute(); }, source);
}

Result<NullDistribution> CalibrationCache::ComputeWithLease(
    const CalibrationStore& store, const CalibrationKey& key,
    const ComputeFn& compute, const WaitStopped& wait_stopped,
    bool* from_store, bool* wrote_through) const {
  for (;;) {
    auto acquired = store.TryAcquireLease(key);
    if (!acquired.ok()) {
      // Lease infrastructure unavailable (unwritable leases/ etc.): degrade
      // to an unleased compute. Leases only dedupe cross-process work;
      // correctness never depends on them.
      return compute(ComputeContext{});
    }
    if (acquired->lease != nullptr) {
      FileLease& lease = *acquired->lease;
      // We are the cross-process owner. A previous holder may have persisted
      // the frame between our store miss and this acquisition (the takeover
      // path especially) — re-check before paying for the simulation.
      auto persisted = store.LoadView(key);
      if (persisted.ok()) {
        lease.Release();
        *from_store = true;
        return persisted;
      }
      ComputeContext context;
      FileLease* lease_ptr = &lease;
      context.heartbeat = [lease_ptr] { lease_ptr->Heartbeat(); };
      auto computed = compute(context);
      if (computed.ok()) {
        // Write THROUGH while still leased: a peer polling this lease
        // re-checks the store the moment it releases, so the frame must be
        // on disk before the release. A failed write is absorbed — the peer
        // then acquires and recomputes identically.
        if (store.Store(key, computed.value()).ok()) *wrote_through = true;
      }
      lease.Release();
      return computed;
    }
    // A live foreign process is simulating this key right now. Poll: it will
    // persist + release (store hit below), release without persisting (we
    // acquire next round), or die (its lease goes stale and the acquisition
    // above takes it over).
    if (wait_stopped && wait_stopped()) {
      // Our request is being cancelled/drained: stop waiting on the foreign
      // holder and run the computation locally — its own stop checks turn
      // this into a prompt Cancelled/DeadlineExceeded.
      return compute(ComputeContext{});
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        store.options().lease_wait_poll_ms));
    auto persisted = store.LoadView(key);
    if (persisted.ok()) {
      *from_store = true;
      return persisted;
    }
  }
}

Result<std::shared_ptr<const NullDistribution>> CalibrationCache::GetOrCompute(
    const CalibrationKey& key, const ComputeFn& compute, Source* source,
    const WaitStopped& wait_stopped) {
  if (source != nullptr) *source = Source::kMemory;
  Shard& shard = ShardFor(key);
  std::shared_ptr<Slot> slot;
  bool owner = false;
  std::shared_ptr<CalibrationStore> store;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.slots.find(key.debug);
    if (it == shard.slots.end()) {
      slot = std::make_shared<Slot>();
      shard.slots.emplace(key.debug, slot);
      owner = true;
      ++shard.misses;
      store = store_;
    } else {
      slot = it->second;
      if (slot->ready) {
        ++shard.hits;
        return slot->value;
      }
      // Joining an in-flight computation still counts as a miss: the caller
      // pays (waits for) the simulation rather than being served instantly.
      ++shard.misses;
    }
  }

  if (owner) {
    // Read-through: a valid persisted frame substitutes for the simulation
    // (it holds the exact bytes the simulation would produce), served as a
    // zero-copy view over the store's mmap'd frame when the warm path is
    // enabled (copy-on-load otherwise — bit-identical either way). Any load
    // defect — absent, truncated, corrupt, version-skewed — falls back to
    // compute(), leased across processes when the store runs the fabric.
    Result<NullDistribution> computed = Status::NotFound("no store attached");
    bool from_store = false;
    bool wrote_through = false;
    if (store != nullptr) {
      computed = store->LoadView(key);
      from_store = computed.ok();
    }
    if (!from_store) {
      if (store != nullptr && store->leases_enabled()) {
        computed = ComputeWithLease(*store, key, compute, wait_stopped,
                                    &from_store, &wrote_through);
      } else {
        computed = compute(ComputeContext{});
      }
    }
    std::unique_lock<std::mutex> lock(shard.mu);
    if (computed.ok()) {
      slot->value = std::make_shared<const NullDistribution>(
          std::move(computed).value());
      slot->status = Status::OK();
      if (source != nullptr) {
        *source = from_store ? Source::kStore : Source::kComputed;
      }
      if (from_store) ++shard.store_hits;
      if (wrote_through) ++shard.store_writes;  // leased write-through landed
      if (!from_store && !wrote_through && store != nullptr) {
        // Write-behind: persist off the compute path. The task captures the
        // store and the immutable value by shared_ptr, so it is self-
        // contained; the TaskGroup ties its lifetime to this cache (flushed
        // in the destructor). Store errors are absorbed — persistence is an
        // optimization, never a correctness dependency.
        ++shard.store_writes;
        std::shared_ptr<const NullDistribution> value = slot->value;
        CalibrationKey key_copy = key;
        DefaultThreadPool().Submit(
            &store_writes_group_,
            [store, key_copy = std::move(key_copy), value = std::move(value)] {
              // Error action: drop this persist on the floor (a lost
              // write-behind — the calibration survives only in memory).
              SFA_FAILPOINT_WITH("cache.write_behind", {
                if (fp_action.kind == FailpointActionKind::kError) return;
              });
              store->Store(key_copy, *value).ok();
            });
      }
    } else {
      slot->status = computed.status();
      // Failed computations are not cached; erase so a later call retries.
      shard.slots.erase(key.debug);
    }
    slot->ready = true;
    shard.slot_ready.notify_all();
    if (!slot->status.ok()) return slot->status;
    return slot->value;
  }

  std::unique_lock<std::mutex> lock(shard.mu);
  shard.slot_ready.wait(lock, [&] { return slot->ready; });
  if (!slot->status.ok()) return slot->status;
  return slot->value;
}

std::shared_ptr<const NullDistribution> CalibrationCache::Lookup(
    const CalibrationKey& key) const {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.slots.find(key.debug);
  if (it == shard.slots.end() || !it->second->ready ||
      !it->second->status.ok()) {
    return nullptr;
  }
  ++shard.hits;
  return it->second->value;
}

CalibrationCache::Stats CalibrationCache::stats() const {
  Stats s;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.entries += shard.slots.size();
    s.store_hits += shard.store_hits;
    s.store_writes += shard.store_writes;
  }
  return s;
}

void CalibrationCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.slots.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.store_hits = 0;
    shard.store_writes = 0;
  }
}

}  // namespace sfa::core
