// Concurrent multi-audit pipeline: many (dataset × measure × family ×
// null-model × α) audit requests executed as one batch on the shared
// common::ThreadPool, with null calibrations deduplicated through a
// core::CalibrationCache.
//
// Execution model — two-level parallelism on one fixed-width pool:
//
//   across requests    view construction and observed-world scans run as
//                      pool tasks, one per request;
//   within a request   each *unique* null calibration runs the batched
//                      Monte Carlo world engine, whose ParallelFor fans
//                      world batches onto the same pool (the pool's helping
//                      WaitGroup makes the nesting deadlock-free and never
//                      oversubscribes — see common/thread_pool.h).
//
// The determinism contract, and the headline guarantee of this layer: for a
// fixed set of requests (including their seeds), the statistical payload of
// every AuditResponse — the entire AuditResult — is byte-identical
// regardless of request order within the batch, PipelineOptions::parallel,
// thread count, and whether calibrations were computed fresh or served from
// a warm cache. This holds because (a) every per-request computation depends
// only on that request's inputs, (b) the world engine is bit-identical
// across execution strategies, and (c) cache keys (core/calibration_cache.h)
// hash every draw-relevant simulation input, so a hit substitutes a value
// the request's own simulation would have produced bit-for-bit.
// Timing/caching metadata on the response (cache_hit, milliseconds) is
// diagnostic and exempt.
#ifndef SFA_CORE_AUDIT_PIPELINE_H_
#define SFA_CORE_AUDIT_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/audit.h"
#include "core/calibration_cache.h"

namespace sfa::core {

/// One audit request. Dataset and family are borrowed and must outlive the
/// Run() call; the family must be bound to the locations of the request's
/// measure view (for kStatisticalParity, the dataset itself).
struct AuditRequest {
  /// Caller-chosen tag echoed in the response and the manifest.
  std::string id;
  const data::OutcomeDataset* dataset = nullptr;
  const RegionFamily* family = nullptr;
  AuditOptions options;
  /// When true, `dataset` is already the measure view (e.g. a pre-filtered
  /// Y=1 slice) and BuildMeasureView is skipped; options.measure is then
  /// only descriptive.
  bool dataset_is_view = false;
};

/// One audit outcome. `result` is valid iff `status` is OK; a failed request
/// never poisons the rest of the batch.
struct AuditResponse {
  std::string id;
  Status status = Status::OK();
  AuditResult result;
  /// True when this request's calibration was served from the cache (warm
  /// from a previous Run, or computed once by a sibling request in this
  /// batch). Diagnostic — not covered by the determinism contract.
  bool cache_hit = false;
  /// The calibration identity (CalibrationKey::debug) for manifest joins.
  std::string calibration_key;
  /// Wall-clock milliseconds of this request's assembly (scan + evidence),
  /// excluding shared calibration time. Diagnostic.
  double assemble_ms = 0.0;
};

/// Machine-readable record of one Run(): per-request rows plus batch-level
/// cache and timing aggregates. Serialize with ToJson().
struct PipelineManifest {
  struct Row {
    std::string id;
    std::string calibration_key;
    bool cache_hit = false;
    bool ok = false;
    std::string error;  ///< status message when !ok
    bool spatially_fair = false;
    double p_value = 0.0;
    double tau = 0.0;
    uint64_t total_n = 0;
    uint64_t total_p = 0;
    size_t num_findings = 0;
    double assemble_ms = 0.0;
  };

  size_t num_requests = 0;
  size_t num_failed = 0;
  /// Calibrations simulated (unique misses) vs reused during this Run.
  uint64_t calibrations_computed = 0;
  uint64_t calibrations_reused = 0;
  /// Cumulative cache stats after this Run (spans Runs on a shared cache).
  CalibrationCache::Stats cache;
  double wall_ms = 0.0;
  bool parallel = false;
  std::vector<Row> rows;  ///< in request order

  /// Hit fraction of this Run (reused / (computed + reused)); 0 when empty.
  double HitRate() const;

  std::string ToJson() const;
};

struct PipelineOptions {
  /// Schedule request preparation/assembly and unique calibrations on the
  /// shared thread pool. Results are identical either way (contract above);
  /// serial execution exists for debugging and as the determinism baseline.
  bool parallel = true;
};

/// The pipeline. Thread-compatible: one Run() at a time per instance; the
/// calibration cache persists across Run() calls, so replaying a request
/// stream in waves keeps earlier calibrations warm.
class AuditPipeline {
 public:
  explicit AuditPipeline(PipelineOptions options = {}) : options_(options) {}

  const PipelineOptions& options() const { return options_; }
  CalibrationCache& cache() { return cache_; }

  /// Executes `batch`, returning one response per request in request order.
  /// Per-request failures are reported in AuditResponse::status; the
  /// batch-level Status is reserved for structural misuse (null pointers in
  /// a request). `manifest` (optional) receives the run record.
  Result<std::vector<AuditResponse>> Run(const std::vector<AuditRequest>& batch,
                                         PipelineManifest* manifest = nullptr);

 private:
  PipelineOptions options_;
  CalibrationCache cache_;
};

}  // namespace sfa::core

#endif  // SFA_CORE_AUDIT_PIPELINE_H_
