// Concurrent multi-audit pipeline: many (dataset × measure × family ×
// null-model × α) audit requests executed on the shared common::ThreadPool,
// with null calibrations deduplicated through a core::CalibrationCache —
// either as one batch (Run) or as a streaming service (Submit) that yields
// each AuditResponse the moment its request finishes.
//
// Execution model — two-level parallelism on one fixed-width pool:
//
//   across requests    view construction and observed-world scans run as
//                      pool tasks (batch mode) or on dedicated stream
//                      workers (streaming mode), one per request;
//   within a request   each *unique* null calibration runs the batched
//                      Monte Carlo world engine, whose ParallelFor fans
//                      world batches onto the same pool (the pool's helping
//                      WaitGroup makes the nesting deadlock-free and never
//                      oversubscribes — see common/thread_pool.h).
//
// Streaming mode adds an admission layer in front of the workers: a bounded
// queue with priority classes (common::BoundedPriorityQueue). When the queue
// is at capacity the configured backpressure policy applies — reject (Submit
// fails with ResourceExhausted, load shedding) or block (Submit waits for a
// slot). Queue depth at admission and time spent queued are reported on the
// response; rejected submissions never consume simulation work.
//
// The determinism contract, and the headline guarantee of this layer: for a
// fixed set of requests (including their seeds), the statistical payload of
// every AuditResponse — the entire AuditResult — is byte-identical
// regardless of request order, batch vs. streaming submission, priorities
// and queue capacity, PipelineOptions::parallel, thread count, and whether
// calibrations were computed fresh, served from a warm in-memory cache, or
// loaded from a persistent CalibrationStore written by an earlier process.
// This holds because (a) every per-request computation depends only on that
// request's inputs, (b) the world engine is bit-identical across execution
// strategies, and (c) cache keys (core/calibration_cache.h) hash every
// draw-relevant simulation input, so a hit — memory or disk — substitutes a
// value the request's own simulation would have produced bit-for-bit.
// Timing/caching/admission metadata on the response (cache_hit,
// milliseconds, queue depth/wait) is diagnostic and exempt.
#ifndef SFA_CORE_AUDIT_PIPELINE_H_
#define SFA_CORE_AUDIT_PIPELINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/audit.h"
#include "core/calibration_cache.h"

namespace sfa::core {

/// One audit request. Dataset and family are borrowed and must outlive the
/// Run() call (batch) or the request's completion (streaming); the family
/// must be bound to the locations of the request's measure view (for
/// kStatisticalParity, the dataset itself).
struct AuditRequest {
  /// Caller-chosen tag echoed in the response and the manifest.
  std::string id;
  const data::OutcomeDataset* dataset = nullptr;
  const RegionFamily* family = nullptr;
  AuditOptions options;
  /// When true, `dataset` is already the measure view (e.g. a pre-filtered
  /// Y=1 slice) and BuildMeasureView is skipped; options.measure is then
  /// only descriptive.
  bool dataset_is_view = false;
  /// Relative deadline in milliseconds: from Submit() in streaming mode,
  /// from Run() entry in batch mode. 0 = none. Negative = already expired —
  /// fails DeadlineExceeded at admission without consuming work. Streaming
  /// enforces the deadline at admission, again at dequeue (an expired queued
  /// request is reaped without executing, freeing its worker for live work),
  /// and cooperatively inside the Monte Carlo calibration at batch
  /// boundaries. Batch Run() enforces it at admission and assembly only:
  /// batch-mode calibrations are shared across the whole batch, so one
  /// request's deadline never truncates a sibling's calibration.
  double deadline_ms = 0.0;
  /// Opt-in graceful degradation (streaming): when the deadline expires
  /// mid-calibration, serve a p-value from the completed contiguous prefix
  /// of null worlds instead of failing, flagged AuditResponse::degraded.
  /// The degraded payload is deterministic GIVEN worlds_completed (worlds
  /// are independent substreams), though worlds_completed itself depends on
  /// where the deadline landed.
  bool allow_degraded = false;
};

/// Admission priority class of a streamed request. Lower value = served
/// first: the dispatcher always drains kInteractive before kNormal before
/// kBulk, FIFO within a class.
enum class RequestPriority : uint8_t {
  kInteractive = 0,
  kNormal = 1,
  kBulk = 2,
};
inline constexpr size_t kNumRequestPriorities = 3;
const char* RequestPriorityToString(RequestPriority priority);

/// One audit outcome. `result` is valid iff `status` is OK; a failed request
/// never poisons the rest of the batch/stream.
struct AuditResponse {
  std::string id;
  Status status = Status::OK();
  AuditResult result;
  /// True when this request's calibration was served without simulating —
  /// warm from a previous Run, computed once by a sibling request, or loaded
  /// from the persistent store. Diagnostic — not covered by the determinism
  /// contract.
  bool cache_hit = false;
  /// The calibration identity (CalibrationKey::debug) for manifest joins.
  std::string calibration_key;
  /// Wall-clock milliseconds of this request's assembly (scan + evidence),
  /// excluding shared calibration time. Diagnostic.
  double assemble_ms = 0.0;
  /// Streaming admission metadata (diagnostic; defaults in batch mode):
  /// the request's priority class, the number of queued requests at
  /// admission including this one (exact when producers are serialized,
  /// approximate under concurrent submission), and the submit-to-dispatch
  /// wait — from the Submit call until a worker picked the request up,
  /// INCLUDING any time the producer spent blocked on backpressure
  /// admission under the block_when_full policy (so it is the full
  /// end-to-end queueing delay a caller experienced, not queue dwell alone).
  RequestPriority priority = RequestPriority::kNormal;
  size_t queue_depth = 0;
  double queue_wait_ms = 0.0;
  /// True when the result was served from a partial calibration after this
  /// request's deadline expired mid-simulation (AuditRequest::allow_degraded).
  /// The p-value then ranks the observed statistic against `worlds_completed`
  /// null worlds instead of the requested count.
  bool degraded = false;
  /// Null worlds backing this response's p-value: the requested
  /// monte_carlo.num_worlds normally, the completed prefix when degraded,
  /// 0 when status is not OK.
  size_t worlds_completed = 0;
};

/// Machine-readable record of one Run(): per-request rows plus batch-level
/// cache and timing aggregates. Serialize with ToJson().
struct PipelineManifest {
  struct Row {
    std::string id;
    std::string calibration_key;
    bool cache_hit = false;
    bool ok = false;
    std::string error;  ///< status message when !ok
    bool spatially_fair = false;
    double p_value = 0.0;
    /// SignificanceMethodToString of the method that produced p_value.
    std::string p_value_method;
    bool tail_fit_ok = false;
    double tau = 0.0;
    uint64_t total_n = 0;
    uint64_t total_p = 0;
    size_t num_findings = 0;
    double assemble_ms = 0.0;
  };

  size_t num_requests = 0;
  size_t num_failed = 0;
  /// Calibrations simulated (unique misses) vs loaded from the persistent
  /// store vs reused from memory during this Run.
  uint64_t calibrations_computed = 0;
  uint64_t calibrations_loaded = 0;
  uint64_t calibrations_reused = 0;
  /// Tail-smart significance aggregates over this Run: freshly simulated
  /// calibrations that stopped early on the adaptive CI rule, OK rows whose
  /// p-value used the Gumbel tail, and the null worlds those early stops
  /// avoided simulating.
  uint64_t early_stops = 0;
  uint64_t tail_fits = 0;
  uint64_t worlds_saved = 0;
  /// Cumulative cache stats after this Run (spans Runs on a shared cache).
  CalibrationCache::Stats cache;
  double wall_ms = 0.0;
  bool parallel = false;
  std::vector<Row> rows;  ///< in request order

  /// Fraction of served requests that did not simulate
  /// ((loaded + reused) / (computed + loaded + reused)); 0 when empty.
  double HitRate() const;

  std::string ToJson() const;
};

struct PipelineOptions {
  /// Schedule request preparation/assembly and unique calibrations on the
  /// shared thread pool. Results are identical either way (contract above);
  /// serial execution exists for debugging and as the determinism baseline.
  bool parallel = true;
};

/// Configuration of one streaming session (StartStream).
struct StreamOptions {
  /// Total queued requests across all priority classes; admissions beyond
  /// this trigger the backpressure policy.
  size_t queue_capacity = 64;
  /// Dedicated dispatcher threads draining the admission queue. Each worker
  /// executes one request at a time; the Monte Carlo calibration inside
  /// still fans out on the shared pool.
  size_t num_workers = 2;
  /// Backpressure policy at capacity: block Submit until a slot frees (true)
  /// or reject immediately with ResourceExhausted (false).
  bool block_when_full = false;
  /// Admit but do not dispatch until ResumeDispatch(). With dispatch paused,
  /// admission outcomes are a deterministic function of capacity and the
  /// submission sequence — the backpressure/ordering tests rely on this, and
  /// it doubles as a warm-up barrier for latency measurement.
  bool start_paused = false;
};

/// Cumulative counters of one streaming session. `submitted` counts every
/// Submit call that reached an accepting session (a Submit racing teardown
/// fails fast and counts nowhere); `admitted + rejected` = submitted (a
/// closed-queue failure counts as rejected); `completed + failed +
/// cancelled` = admitted once the session is finished. The final snapshot
/// reported after FinishStream/AbortStream is taken only after every
/// in-flight Submit has recorded its outcome, so the invariants hold
/// exactly there too.
struct StreamStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;  ///< finished with OK status
  uint64_t failed = 0;     ///< finished with a per-request error
  /// Resolved before dispatch: by AbortStream tearing the session down or by
  /// a per-ticket Cancel() removing the request from the admission queue.
  uint64_t cancelled = 0;
  size_t max_queue_depth = 0;

  // Fault-tolerance counters. A deadline can expire at admission (counted in
  // `rejected` too — the request was never admitted), at dequeue (counted in
  // `failed` too), or mid-calibration (in `failed`, or in `completed` when
  // the response was served degraded); every expiry counts one deadline_miss.
  uint64_t deadline_misses = 0;
  uint64_t degraded = 0;  ///< responses served from a partial calibration

  // Tail-smart significance counters. An early stop here is the ADAPTIVE CI
  // stop (a successful, shorter calibration) — unrelated to deadline/cancel
  // failures above. worlds_saved accumulates (requested - completed) over
  // freshly simulated early-stopped calibrations only (cache hits saved
  // their worlds at compute time, counting them again would double-bill).
  uint64_t early_stops = 0;  ///< adaptive CI stops among fresh calibrations
  uint64_t tail_fits = 0;    ///< OK responses whose p-value used the Gumbel tail
  uint64_t worlds_saved = 0; ///< null worlds not simulated thanks to early stops

  // Store-health snapshot taken from the attached CalibrationStore when the
  // stats are read (all zero when no store is attached). Cumulative over the
  // STORE's lifetime — a store shared across sessions reports its running
  // totals, not per-session deltas.
  uint64_t store_retries = 0;
  uint64_t store_quarantined = 0;
  uint64_t breaker_trips = 0;
  bool breaker_open = false;

  // Multi-process fabric counters (store snapshot, same caveats as above):
  // crash-recovery sweeps and cross-process lease activity.
  uint64_t temps_reaped = 0;       ///< orphaned writer temps swept
  uint64_t leases_reclaimed = 0;   ///< stale leases/tombstones reclaimed
  uint64_t lease_takeovers = 0;    ///< acquisitions over a dead/stale holder
  uint64_t quarantine_evicted = 0; ///< quarantined frames GC'd by byte budget

  /// One-line JSON object of the counters (for manifests and run summaries).
  std::string ToJson() const;
};

/// Pollable handle to one streamed request: a one-shot future completed by
/// the dispatcher. done() polls; Get() blocks. Tickets are always completed
/// — on success, per-request failure, or stream abort — so Get() never
/// hangs past FinishStream/AbortStream.
class AuditTicket {
 public:
  AuditTicket() = default;
  AuditTicket(const AuditTicket&) = delete;
  AuditTicket& operator=(const AuditTicket&) = delete;

  bool done() const;
  /// Blocks until the response is ready, then returns it (valid for the
  /// ticket's lifetime).
  const AuditResponse& Get() const;

 private:
  friend class AuditPipeline;
  void Complete(AuditResponse response);

  mutable std::mutex mu_;
  mutable std::condition_variable done_cv_;
  bool done_ = false;
  AuditResponse response_;
};

/// Completion callback of a streamed request, invoked after the ticket is
/// completed — on the dispatching worker thread normally, or on the
/// Cancel() caller's thread for a per-ticket cancellation. Must be
/// thread-safe against other completions; keep it cheap (it blocks the
/// worker).
using AuditCallback = std::function<void(const AuditResponse&)>;

/// The pipeline. The calibration cache persists across Run() calls and
/// streaming sessions, so replaying a request stream in waves keeps earlier
/// calibrations warm; attach a CalibrationStore to the cache to keep them
/// warm across processes.
///
/// Threading: batch Run() is one-at-a-time per instance. Streaming control
/// calls (StartStream / ResumeDispatch / FinishStream / AbortStream) belong
/// to one controller thread; Submit() may be called from any number of
/// producer threads between StartStream and the finishing call. Batch and
/// streaming modes are mutually exclusive — Run() fails while a stream is
/// active.
class AuditPipeline {
 public:
  explicit AuditPipeline(PipelineOptions options = {}) : options_(options) {}
  ~AuditPipeline();

  const PipelineOptions& options() const { return options_; }
  CalibrationCache& cache() { return cache_; }

  /// Executes `batch`, returning one response per request in request order.
  /// Per-request failures are reported in AuditResponse::status; the
  /// batch-level Status is reserved for structural misuse (null pointers in
  /// a request, active streaming session). `manifest` (optional) receives
  /// the run record.
  Result<std::vector<AuditResponse>> Run(const std::vector<AuditRequest>& batch,
                                         PipelineManifest* manifest = nullptr);

  // ------------------------------------------------------------- streaming
  /// Opens a streaming session: spawns the dispatcher workers and the
  /// bounded admission queue. Fails if a session is already active.
  Status StartStream(const StreamOptions& options = {});

  bool streaming() const { return CurrentStream() != nullptr; }

  /// Submits one request to the active session. On admission, returns a
  /// ticket that completes when the request finishes; `callback` (optional)
  /// additionally fires on the worker thread at completion. On backpressure
  /// rejection returns ResourceExhausted (reject policy) — the request
  /// consumed no simulation work and may be retried. Borrowed dataset/family
  /// must outlive the request's completion.
  Result<std::shared_ptr<AuditTicket>> Submit(
      AuditRequest request,
      RequestPriority priority = RequestPriority::kNormal,
      AuditCallback callback = nullptr);

  /// Cancels one still-queued request of the active session: removes it from
  /// the admission queue (freeing its capacity slot) and resolves its ticket
  /// with a kCancelled status, counted in StreamStats::cancelled. Returns
  /// NotFound when the ticket is not waiting in the queue — already
  /// dispatched to a worker, already finished, cancelled before, or foreign
  /// to this session — in which case nothing changes (a dispatched request
  /// runs to completion; cancellation never interrupts work in flight).
  /// With dispatch paused (StreamOptions::start_paused) outcomes are a
  /// deterministic function of the Submit/Cancel sequence.
  Status Cancel(const std::shared_ptr<AuditTicket>& ticket);

  /// Releases a start_paused session's dispatch gate. Idempotent.
  void ResumeDispatch();

  /// Drains the session: stops admissions, lets workers finish every queued
  /// request, joins them, flushes write-behind persists, and records the
  /// final StreamStats. Fails only when no session is active.
  Status FinishStream();

  /// Graceful drain with a time budget: FinishStream semantics, except that
  /// when `deadline_ms` > 0 elapses before the queue empties, the session is
  /// cancelled — in-flight calibrations stop at the next world-batch
  /// boundary (releasing any cross-process leases they hold, so peers can
  /// take the keys over immediately), still-queued requests resolve as
  /// cancelled — and the drain then completes: workers joined, write-behind
  /// flushed, final stats recorded. deadline_ms <= 0 waits indefinitely
  /// (identical to FinishStream). This is the SIGTERM path: stop taking
  /// work, finish what fits the budget, persist, report, exit.
  Status Drain(double deadline_ms = 0.0);

  /// Tears the session down without draining: queued-but-undispatched
  /// requests fail with FailedPrecondition (counted as cancelled); requests
  /// already executing finish normally. Joins workers and records stats.
  /// No-op when no session is active.
  void AbortStream();

  /// Counters of the active session, or of the last finished one.
  StreamStats stream_stats() const;

 private:
  struct StreamEntry {
    AuditRequest request;
    RequestPriority priority = RequestPriority::kNormal;
    std::shared_ptr<AuditTicket> ticket;
    AuditCallback callback;
    size_t depth_at_admission = 0;
    std::chrono::steady_clock::time_point admitted_at;
    /// Absolute expiry stamped at admission from request.deadline_ms;
    /// epoch-zero = none.
    std::chrono::steady_clock::time_point deadline{};
  };

  /// State of one streaming session (lives between StartStream and
  /// FinishStream/AbortStream).
  struct Stream {
    explicit Stream(const StreamOptions& opts)
        : options(opts),
          queue(opts.queue_capacity, kNumRequestPriorities) {}

    StreamOptions options;
    BoundedPriorityQueue<StreamEntry> queue;
    std::vector<std::thread> workers;
    CancellationToken cancel;
    /// Guards paused, accepting, inflight_submits, stats, fingerprints —
    /// and the cancel token's transition, which doubles as a CV predicate
    /// for the worker dispatch gate (a CV predicate must change under the
    /// mutex or the wakeup can be lost).
    mutable std::mutex mu;
    std::condition_variable resume_cv;
    bool paused = false;
    /// Cleared by teardown before the queue closes: a Submit that finds
    /// accepting == false fails fast without touching stats, so the final
    /// stats snapshot (taken after inflight_submits drains) satisfies the
    /// documented invariants exactly.
    bool accepting = true;
    /// Submits past the accepting gate but not yet recorded; teardown waits
    /// for zero before snapshotting stats.
    size_t inflight_submits = 0;
    StreamStats stats;
    /// Session-scoped FamilyFingerprint memo (the expensive part of a
    /// calibration key, a pure function of the immutable family). Keyed by
    /// pointer: families must outlive the session and must not be destroyed
    /// and reallocated mid-session.
    std::unordered_map<const RegionFamily*, uint64_t> fingerprints;
  };

  void StreamWorkerLoop(Stream* stream);
  AuditResponse ExecuteStreamRequest(Stream* stream, const StreamEntry& entry);
  /// Shared teardown: drain (abort=false) or abandon (abort=true) the
  /// session. drain_deadline_ms > 0 arms a watchdog that cancels the session
  /// when the drain overruns the budget (Drain); <= 0 = no watchdog.
  void TeardownStream(bool abort, double drain_deadline_ms = 0.0);
  /// Copies the attached store's fault counters into a stats snapshot
  /// (no-op without a store).
  void FillStoreHealth(StreamStats* stats) const;
  /// Snapshot of the session pointer. Submitters hold the returned reference
  /// for the duration of the call, so a producer woken from a blocking Push
  /// by teardown's queue.Close() still has a live Stream to record its
  /// rejection against even after the controller dropped the session.
  std::shared_ptr<Stream> CurrentStream() const;

  PipelineOptions options_;
  CalibrationCache cache_;
  /// Guards stream_ (the pointer itself) and last_stream_stats_.
  mutable std::mutex stream_ptr_mu_;
  std::shared_ptr<Stream> stream_;
  StreamStats last_stream_stats_;
};

}  // namespace sfa::core

#endif  // SFA_CORE_AUDIT_PIPELINE_H_
