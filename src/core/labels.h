// Dual-representation label sets for the Monte Carlo loop.
//
// Different region families want different label layouts: grid-aligned
// families accumulate per-cell counts from a byte array in one O(N) pass,
// while memoized square-scan families intersect a label *bit vector* with
// per-region membership bit vectors via popcount. A Labels instance keeps
// both views consistent so each family uses its fast path.
#ifndef SFA_CORE_LABELS_H_
#define SFA_CORE_LABELS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "spatial/bitvector.h"

namespace sfa::core {

class Labels {
 public:
  Labels() = default;

  /// Builds both representations from a 0/1 byte vector.
  static Labels FromBytes(std::vector<uint8_t> bytes);

  /// Null-world generator, unconditional variant (the paper's §3): each
  /// point's label is an independent Bernoulli(rho) trial.
  static Labels SampleBernoulli(size_t n, double rho, Rng* rng);

  /// Null-world generator, conditional variant (Kulldorff 1997): exactly
  /// `positives` labels set to 1, positions chosen uniformly at random
  /// (permutation null). Provided for comparison ablations.
  static Labels SamplePermutation(size_t n, uint64_t positives, Rng* rng);

  size_t size() const { return bytes_.size(); }
  uint64_t positive_count() const { return positive_count_; }
  double positive_rate() const {
    return bytes_.empty() ? 0.0
                          : static_cast<double>(positive_count_) / bytes_.size();
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  const spatial::BitVector& bits() const { return bits_; }

 private:
  std::vector<uint8_t> bytes_;
  spatial::BitVector bits_;
  uint64_t positive_count_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_LABELS_H_
