// Dual-representation label sets for the Monte Carlo loop.
//
// Different region families want different label layouts: grid-aligned
// families accumulate per-cell counts from a byte array in one O(N) pass,
// while memoized square-scan families intersect a label *bit vector* with
// per-region membership bit vectors via popcount. A Labels instance keeps the
// byte view authoritative and materializes the bit view lazily (word-packed,
// not bit-by-bit) on first use, so audits whose families never touch bits —
// e.g. grid-only audits — never pay for it.
#ifndef SFA_CORE_LABELS_H_
#define SFA_CORE_LABELS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "spatial/bitvector.h"

namespace sfa::core {

class Labels {
 public:
  Labels() = default;

  /// Builds from a 0/1 byte vector (the bit view stays lazy).
  static Labels FromBytes(std::vector<uint8_t> bytes);

  /// In-place copy-assignment from a 0/1 byte span, reusing existing storage
  /// and invalidating the cached bit/sparse views — the pooled-scratch
  /// counterpart of FromBytes for contexts (e.g. the audit pipeline) that
  /// materialize many observed worlds on one recycled instance.
  void AssignBytes(const uint8_t* bytes, size_t n);

  /// Null-world generator, unconditional variant (the paper's §3): each
  /// point's label is an independent Bernoulli(rho) trial.
  static Labels SampleBernoulli(size_t n, double rho, Rng* rng);

  /// Null-world generator, conditional variant (Kulldorff 1997): exactly
  /// `positives` labels set to 1, positions chosen uniformly at random
  /// (permutation null). Provided for comparison ablations.
  static Labels SamplePermutation(size_t n, uint64_t positives, Rng* rng);

  /// In-place Bernoulli resampling reusing existing storage: after the first
  /// call on a pooled instance, drawing a world allocates nothing. Consumes
  /// exactly the same RNG stream as SampleBernoulli.
  void ResampleBernoulli(size_t n, double rho, Rng* rng);

  /// In-place permutation resampling (same stream as SamplePermutation).
  /// `order_scratch` (optional) supplies the shuffle buffer so pooled callers
  /// avoid its allocation too.
  void ResamplePermutation(size_t n, uint64_t positives, Rng* rng,
                           std::vector<uint32_t>* order_scratch = nullptr);

  size_t size() const { return bytes_.size(); }
  uint64_t positive_count() const { return positive_count_; }
  double positive_rate() const {
    return bytes_.empty() ? 0.0
                          : static_cast<double>(positive_count_) / bytes_.size();
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// The bit view, built word-at-a-time on first access and cached until the
  /// next resample. NOT thread-safe for the *first* call on a shared
  /// instance; materialize before sharing across threads (the Monte Carlo
  /// engine's label pools are thread-local, so worlds never race here).
  const spatial::BitVector& bits() const {
    if (!bits_valid_) BuildBits();
    return bits_;
  }

  /// The sparse view: ascending ids of the positive points, built lazily from
  /// the byte view and cached until the next resample, reusing its capacity
  /// across resamples on pooled instances. This is the input of the sparse
  /// annulus scatter backend (core/annulus_index.h) — families counting
  /// through it never materialize dense label bits at all. Same thread-safety
  /// contract as bits(): pre-materialize before sharing one instance across
  /// threads.
  const std::vector<uint32_t>& positive_indices() const {
    if (!positives_valid_) BuildPositiveIndices();
    return positive_indices_;
  }

 private:
  void BuildBits() const;
  void BuildPositiveIndices() const;

  std::vector<uint8_t> bytes_;
  mutable spatial::BitVector bits_;
  mutable std::vector<uint32_t> positive_indices_;
  mutable bool bits_valid_ = false;
  mutable bool positives_valid_ = false;
  uint64_t positive_count_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_LABELS_H_
