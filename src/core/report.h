// Textual rendering of audit results for harnesses, examples, and the
// figure-reproduction benches.
#ifndef SFA_CORE_REPORT_H_
#define SFA_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/audit.h"
#include "core/meanvar.h"

namespace sfa::core {

/// Multi-line verdict block: dataset stats, τ, p-value, critical value,
/// verdict, and the count of significant regions.
std::string FormatAuditSummary(const AuditResult& result,
                               const std::string& dataset_name);

/// Fixed-width table of findings: rank, n, p, local rate, Λ, rect.
std::string FormatFindingsTable(const std::vector<RegionFinding>& findings,
                                size_t max_rows = 20);

/// One-line rendering of a single finding (used for headline regions).
std::string FormatFinding(const RegionFinding& finding);

/// Fixed-width table of MeanVar's top contributors.
std::string FormatMeanVarTable(const MeanVarResult& result, size_t max_rows = 20);

}  // namespace sfa::core

#endif  // SFA_CORE_REPORT_H_
