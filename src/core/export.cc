#include "core/export.h"

#include <fstream>

#include "common/string_util.h"

namespace sfa::core {

// Minimal JSON string escaping (quotes, backslashes, control chars) — labels
// are library-generated but may embed user-provided family names.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string RectRingCoordinates(const geo::Rect& r) {
  // GeoJSON polygons are arrays of linear rings, closed (first == last),
  // counter-clockwise for the exterior ring.
  return StrFormat(
      "[[[%.6f,%.6f],[%.6f,%.6f],[%.6f,%.6f],[%.6f,%.6f],[%.6f,%.6f]]]",
      r.min_x, r.min_y, r.max_x, r.min_y, r.max_x, r.max_y, r.min_x, r.max_y,
      r.min_x, r.min_y);
}

Status WriteFile(const std::string& content, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << content;
  out.flush();
  if (!out.good()) return Status::IOError("failed while writing '" + path + "'");
  return Status::OK();
}

}  // namespace

std::string FindingsToGeoJson(const std::vector<RegionFinding>& findings) {
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const RegionFinding& f = findings[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
        "\"coordinates\":%s},\"properties\":{\"rank\":%zu,\"n\":%llu,"
        "\"p\":%llu,\"local_rate\":%.6f,\"llr\":%.6f,\"label\":\"%s\"",
        RectRingCoordinates(f.rect).c_str(), i + 1,
        static_cast<unsigned long long>(f.n), static_cast<unsigned long long>(f.p),
        f.local_rate, f.llr, JsonEscape(f.label).c_str());
    if (!f.class_counts.empty()) {
      // Multinomial findings carry the per-class counts inside the region.
      out += ",\"class_counts\":[";
      for (size_t k = 0; k < f.class_counts.size(); ++k) {
        if (k > 0) out += ',';
        out += StrFormat("%llu",
                         static_cast<unsigned long long>(f.class_counts[k]));
      }
      out += ']';
    }
    if (f.advisory) {
      // Flag findings admitted against the Gumbel-advisory threshold (the
      // empirical critical value was unresolvable at this world budget).
      out += ",\"advisory\":true";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status WriteFindingsGeoJson(const std::vector<RegionFinding>& findings,
                            const std::string& path) {
  return WriteFile(FindingsToGeoJson(findings), path);
}

std::string DatasetToGeoJson(const data::OutcomeDataset& dataset,
                             size_t max_points) {
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  const size_t n = dataset.size();
  const size_t stride = n <= max_points ? 1 : (n + max_points - 1) / max_points;
  bool first = true;
  for (size_t i = 0; i < n; i += stride) {
    if (!first) out += ',';
    first = false;
    const geo::Point& p = dataset.locations()[i];
    out += StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
        "\"coordinates\":[%.6f,%.6f]},\"properties\":{\"outcome\":%u}}",
        p.x, p.y, dataset.predicted()[i]);
  }
  out += "]}";
  return out;
}

Status WriteFindingsCsv(const std::vector<RegionFinding>& findings,
                        const std::string& path) {
  std::string out = "rank,min_lon,min_lat,max_lon,max_lat,n,p,local_rate,llr,label\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const RegionFinding& f = findings[i];
    // Quote the label; it may contain commas.
    out += StrFormat("%zu,%.6f,%.6f,%.6f,%.6f,%llu,%llu,%.6f,%.6f,\"%s\"\n", i + 1,
                     f.rect.min_x, f.rect.min_y, f.rect.max_x, f.rect.max_y,
                     static_cast<unsigned long long>(f.n),
                     static_cast<unsigned long long>(f.p), f.local_rate, f.llr,
                     f.label.c_str());
  }
  return WriteFile(out, path);
}

}  // namespace sfa::core
