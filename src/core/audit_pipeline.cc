#include "core/audit_pipeline.h"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/calibration_store.h"
#include "core/export.h"
#include "core/measure.h"

namespace sfa::core {

namespace {

/// Absolute expiry for a relative deadline measured from `from`; epoch-zero
/// (= "none") when deadline_ms is 0. A negative deadline_ms lands in the
/// past, so Expired() is immediately true — the admission-reject contract.
std::chrono::steady_clock::time_point DeadlineFor(
    double deadline_ms, std::chrono::steady_clock::time_point from) {
  if (deadline_ms == 0.0) return {};
  return from + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));
}

bool DeadlineExpired(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point{} &&
         std::chrono::steady_clock::now() >= deadline;
}

/// Per-request state threaded between the pipeline phases.
struct Prep {
  Status status = Status::OK();
  /// Materialized measure view (only when filtering was required).
  data::OutcomeDataset view_storage;
  /// The view audited: &view_storage or the request's dataset.
  const data::OutcomeDataset* view = nullptr;
  /// The outcome model bound to the view's totals; shared with the unique
  /// calibration so simulation and assembly use the exact same instance.
  std::shared_ptr<const ScanStatistic> statistic;
  /// The request's Monte Carlo options with the adaptive stopping rule
  /// RESOLVED (observed τ from a prepare-phase scan, alpha from the audit
  /// options) — the key below and every later phase must use this copy, not
  /// the raw request options, or adaptive keys would hash unset fields.
  MonteCarloOptions mc;
  CalibrationKey key;
};

/// One unique calibration of the batch.
struct UniqueCalibration {
  CalibrationKey key;
  const RegionFamily* family = nullptr;
  std::shared_ptr<const ScanStatistic> statistic;
  MonteCarloOptions mc;
  size_t first_request = 0;  ///< request index that introduced the key
  bool warm = false;         ///< served from the cache of a previous Run
  CalibrationCache::Source source = CalibrationCache::Source::kMemory;
  std::shared_ptr<const NullDistribution> value;
  Status status = Status::OK();
};

void PrepareRequest(const AuditRequest& req, uint64_t family_fingerprint,
                    Prep* prep) {
  if (req.dataset_is_view ||
      req.options.measure == FairnessMeasure::kStatisticalParity) {
    // Statistical parity audits every individual on the prediction bit —
    // the dataset IS the view; skip the copy BuildMeasureView would make.
    prep->view = req.dataset;
  } else {
    auto view = BuildMeasureView(*req.dataset, req.options.measure);
    if (!view.ok()) {
      prep->status = view.status();
      return;
    }
    prep->view_storage = std::move(view).value();
    prep->view = &prep->view_storage;
  }
  if (prep->view->size() != req.family->num_points()) {
    prep->status = Status::InvalidArgument(StrFormat(
        "request '%s': family is bound to %zu points but the measure view "
        "has %zu",
        req.id.c_str(), req.family->num_points(), prep->view->size()));
    return;
  }
  if (prep->view->empty()) {
    prep->status =
        Status::InvalidArgument(StrFormat("request '%s': empty audit view",
                                          req.id.c_str()));
    return;
  }
  auto statistic = MakeScanStatistic(req.options, *prep->view);
  if (!statistic.ok()) {
    prep->status = statistic.status().WithContext(
        StrFormat("request '%s'", req.id.c_str()));
    return;
  }
  prep->statistic = std::move(statistic).value();
  // Validate the outcome stream BEFORE the calibration phase: a view whose
  // outcomes don't fit the statistic (e.g. class ids fed to a Bernoulli
  // audit) must fail here, not after a wasted — and wrongly-keyed —
  // simulation.
  Status outcomes = prep->statistic->ValidateOutcomes(
      prep->view->predicted().data(), prep->view->size());
  if (!outcomes.ok()) {
    prep->status =
        outcomes.WithContext(StrFormat("request '%s'", req.id.c_str()));
    return;
  }
  prep->mc = req.options.monte_carlo;
  if (prep->mc.adaptive.enabled) {
    // The adaptive rule needs the observed τ BEFORE the calibration key is
    // formed (the stop point — hence the calibration identity — depends on
    // it), so resolve it with a prepare-phase scan of the observed world.
    // The assembly phase rescans for the evidence fields; the extra scan is
    // the price of keying adaptive calibrations honestly.
    AuditScratch prescan_scratch;
    const ScanResult observed = prep->statistic->ScanObserved(
        *req.family, prep->view->predicted().data(), prep->view->size(),
        &prescan_scratch);
    prep->mc.adaptive.observed = observed.max_llr;
    prep->mc.adaptive.alpha = req.options.alpha;
  }
  prep->key = MakeCalibrationKey(*req.family, family_fingerprint,
                                 *prep->statistic, prep->mc);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* RequestPriorityToString(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kInteractive:
      return "interactive";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kBulk:
      return "bulk";
  }
  return "unknown";
}

// ----------------------------------------------------------------- ticket --

bool AuditTicket::done() const {
  std::unique_lock<std::mutex> lock(mu_);
  return done_;
}

const AuditResponse& AuditTicket::Get() const {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_; });
  return response_;
}

void AuditTicket::Complete(AuditResponse response) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    response_ = std::move(response);
    done_ = true;
  }
  done_cv_.notify_all();
}

std::string StreamStats::ToJson() const {
  return StrFormat(
      "{\"submitted\":%llu,\"admitted\":%llu,\"rejected\":%llu,"
      "\"completed\":%llu,\"failed\":%llu,\"cancelled\":%llu,"
      "\"max_queue_depth\":%zu,"
      "\"deadline_misses\":%llu,\"degraded\":%llu,"
      "\"early_stops\":%llu,\"tail_fits\":%llu,\"worlds_saved\":%llu,"
      "\"store_retries\":%llu,\"store_quarantined\":%llu,"
      "\"breaker_trips\":%llu,\"breaker_open\":%s,"
      "\"temps_reaped\":%llu,\"leases_reclaimed\":%llu,"
      "\"lease_takeovers\":%llu,\"quarantine_evicted\":%llu}",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(cancelled), max_queue_depth,
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(early_stops),
      static_cast<unsigned long long>(tail_fits),
      static_cast<unsigned long long>(worlds_saved),
      static_cast<unsigned long long>(store_retries),
      static_cast<unsigned long long>(store_quarantined),
      static_cast<unsigned long long>(breaker_trips),
      breaker_open ? "true" : "false",
      static_cast<unsigned long long>(temps_reaped),
      static_cast<unsigned long long>(leases_reclaimed),
      static_cast<unsigned long long>(lease_takeovers),
      static_cast<unsigned long long>(quarantine_evicted));
}

// --------------------------------------------------------------- manifest --

double PipelineManifest::HitRate() const {
  const uint64_t total =
      calibrations_computed + calibrations_loaded + calibrations_reused;
  return total == 0
             ? 0.0
             : static_cast<double>(calibrations_loaded + calibrations_reused) /
                   static_cast<double>(total);
}

std::string PipelineManifest::ToJson() const {
  std::string out;
  out.reserve(256 + rows.size() * 256);
  out += StrFormat(
      "{\"num_requests\":%zu,\"num_failed\":%zu,\"parallel\":%s,"
      "\"wall_ms\":%.3f,\"calibrations\":{\"computed\":%llu,\"loaded\":%llu,"
      "\"reused\":%llu,\"hit_rate\":%.4f},"
      "\"early_stops\":%llu,\"tail_fits\":%llu,\"worlds_saved\":%llu,"
      "\"cache\":{\"hits\":%llu,"
      "\"misses\":%llu,\"entries\":%llu,\"store_hits\":%llu,"
      "\"store_writes\":%llu},\"requests\":[",
      num_requests, num_failed, parallel ? "true" : "false", wall_ms,
      static_cast<unsigned long long>(calibrations_computed),
      static_cast<unsigned long long>(calibrations_loaded),
      static_cast<unsigned long long>(calibrations_reused), HitRate(),
      static_cast<unsigned long long>(early_stops),
      static_cast<unsigned long long>(tail_fits),
      static_cast<unsigned long long>(worlds_saved),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(cache.store_hits),
      static_cast<unsigned long long>(cache.store_writes));
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (i > 0) out += ',';
    if (!row.ok) {
      out += StrFormat("{\"id\":\"%s\",\"ok\":false,\"error\":\"%s\"}",
                       JsonEscape(row.id).c_str(),
                       JsonEscape(row.error).c_str());
      continue;
    }
    out += StrFormat(
        "{\"id\":\"%s\",\"ok\":true,\"calibration_key\":\"%s\","
        "\"cache_hit\":%s,\"spatially_fair\":%s,\"p_value\":%.17g,"
        "\"p_value_method\":\"%s\",\"tail_fit_ok\":%s,"
        "\"tau\":%.17g,\"n\":%llu,\"p\":%llu,\"num_findings\":%zu,"
        "\"assemble_ms\":%.3f}",
        JsonEscape(row.id).c_str(), JsonEscape(row.calibration_key).c_str(),
        row.cache_hit ? "true" : "false",
        row.spatially_fair ? "true" : "false", row.p_value,
        row.p_value_method.c_str(), row.tail_fit_ok ? "true" : "false",
        row.tau,
        static_cast<unsigned long long>(row.total_n),
        static_cast<unsigned long long>(row.total_p), row.num_findings,
        row.assemble_ms);
  }
  out += "]}";
  return out;
}

// -------------------------------------------------------------- batch Run --

AuditPipeline::~AuditPipeline() {
  // An abandoned session must not leave detached workers touching freed
  // pipeline state; drain-free teardown mirrors AbortStream.
  AbortStream();
}

Result<std::vector<AuditResponse>> AuditPipeline::Run(
    const std::vector<AuditRequest>& batch, PipelineManifest* manifest) {
  Stopwatch wall;
  const auto run_entry = std::chrono::steady_clock::now();
  if (streaming()) {
    return Status::FailedPrecondition(
        "batch Run() while a streaming session is active; FinishStream() "
        "first");
  }
  // Structural misuse fails the whole batch: there is no per-request result
  // to attach an error to when the request itself is not addressable.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].dataset == nullptr || batch[i].family == nullptr) {
      return Status::InvalidArgument(
          StrFormat("request %zu ('%s') has a null dataset or family", i,
                    batch[i].id.c_str()));
    }
  }

  ThreadPool& pool = DefaultThreadPool();
  const bool parallel = options_.parallel;
  auto for_each = [&](size_t n, const std::function<void(size_t)>& fn) {
    if (parallel) {
      pool.ParallelFor(n, fn);
    } else {
      for (size_t i = 0; i < n; ++i) fn(i);
    }
  };

  // Phase 1 — prepare: family fingerprints (once per distinct family — the
  // probe worlds are the expensive part of a key and depend only on the
  // immutable family), then per-request measure views, totals, and keys.
  std::unordered_map<const RegionFamily*, uint64_t> fingerprints;
  std::vector<const RegionFamily*> distinct_families;
  for (const AuditRequest& req : batch) {
    if (fingerprints.emplace(req.family, 0).second) {
      distinct_families.push_back(req.family);
    }
  }
  for_each(distinct_families.size(), [&](size_t f) {
    // Distinct keys: concurrent writes touch distinct, pre-inserted map
    // slots; the map's structure is frozen here (find, never insert).
    fingerprints.find(distinct_families[f])->second =
        FamilyFingerprint(*distinct_families[f]);
  });
  std::vector<Prep> preps(batch.size());
  for_each(batch.size(), [&](size_t i) {
    PrepareRequest(batch[i], fingerprints.at(batch[i].family), &preps[i]);
  });

  // Phase 2 — calibrate: dedupe keys (first-occurrence order, so manifests
  // are stable), serve warm entries from the cache, simulate (or load from
  // the persistent store) the rest. The outer loop parallelizes across
  // unique calibrations while each simulation's world engine fans out onto
  // the same pool underneath.
  std::vector<UniqueCalibration> uniques;
  std::unordered_map<std::string, size_t> key_to_unique;
  std::vector<size_t> request_unique(batch.size(), SIZE_MAX);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!preps[i].status.ok()) continue;
    auto [it, inserted] =
        key_to_unique.emplace(preps[i].key.debug, uniques.size());
    if (inserted) {
      UniqueCalibration cal;
      cal.key = preps[i].key;
      cal.family = batch[i].family;
      cal.statistic = preps[i].statistic;
      cal.mc = preps[i].mc;
      // Honor the pipeline-level parallel switch inside the world engine
      // too; execution-only, never part of the key or the results.
      cal.mc.parallel = cal.mc.parallel && parallel;
      cal.first_request = i;
      cal.value = cache_.Lookup(cal.key);
      cal.warm = cal.value != nullptr;
      uniques.push_back(std::move(cal));
    }
    request_unique[i] = it->second;
  }
  std::vector<size_t> misses;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (!uniques[u].warm) misses.push_back(u);
  }
  for_each(misses.size(), [&](size_t m) {
    UniqueCalibration& cal = uniques[misses[m]];
    auto computed = cache_.GetOrCompute(
        cal.key,
        [&] { return SimulateNull(*cal.statistic, *cal.family, cal.mc); },
        &cal.source);
    if (computed.ok()) {
      cal.value = std::move(computed).value();
    } else {
      cal.status = computed.status();
    }
  });

  // Phase 3 — assemble: full audit per request with the shared calibration
  // injected; per-worker scratch recycles observed-world buffers. Deadlines
  // are enforced here (and implicitly at admission via negative
  // deadline_ms), NOT inside phase 2: batch calibrations are shared across
  // the batch, so one request's budget must never truncate a sibling's
  // calibration — an expired batch request fails cleanly instead of serving
  // degraded (streaming is the degraded-serving mode).
  std::vector<AuditResponse> responses(batch.size());
  for_each(batch.size(), [&](size_t i) {
    static thread_local AuditScratch scratch;
    Stopwatch timer;
    AuditResponse& response = responses[i];
    response.id = batch[i].id;
    if (!preps[i].status.ok()) {
      response.status = preps[i].status;
      return;
    }
    if (DeadlineExpired(DeadlineFor(batch[i].deadline_ms, run_entry))) {
      response.status = Status::DeadlineExceeded(
          StrFormat("request '%s' expired before assembly (deadline %.3f ms "
                    "from Run entry)",
                    batch[i].id.c_str(), batch[i].deadline_ms));
      return;
    }
    const UniqueCalibration& cal = uniques[request_unique[i]];
    response.calibration_key = cal.key.debug;
    response.cache_hit = cal.warm ||
                         cal.source == CalibrationCache::Source::kStore ||
                         i != cal.first_request;
    if (!cal.status.ok()) {
      response.status = cal.status;
      return;
    }
    response.worlds_completed = cal.value->num_worlds();
    auto result = Auditor(batch[i].options)
                      .AuditView(*preps[i].view, *batch[i].family,
                                 preps[i].statistic.get(), cal.value.get(),
                                 &scratch);
    if (!result.ok()) {
      response.status = result.status();
      return;
    }
    response.result = std::move(result).value();
    response.assemble_ms = timer.ElapsedMillis();
  });

  if (manifest != nullptr) {
    manifest->num_requests = batch.size();
    manifest->num_failed = 0;
    manifest->parallel = parallel;
    manifest->calibrations_computed = 0;
    manifest->calibrations_loaded = 0;
    manifest->early_stops = 0;
    manifest->tail_fits = 0;
    manifest->worlds_saved = 0;
    for (const UniqueCalibration& cal : uniques) {
      if (cal.warm || !cal.status.ok()) continue;
      if (cal.source == CalibrationCache::Source::kStore) {
        ++manifest->calibrations_loaded;
      } else {
        ++manifest->calibrations_computed;
        if (cal.value != nullptr && cal.value->early_stopped()) {
          ++manifest->early_stops;
          manifest->worlds_saved +=
              cal.value->worlds_requested() - cal.value->num_worlds();
        }
      }
    }
    uint64_t served = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (preps[i].status.ok() && responses[i].status.ok()) ++served;
    }
    const uint64_t fresh =
        manifest->calibrations_computed + manifest->calibrations_loaded;
    manifest->calibrations_reused = served >= fresh ? served - fresh : 0;
    manifest->cache = cache_.stats();
    manifest->rows.clear();
    manifest->rows.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      PipelineManifest::Row row;
      const AuditResponse& response = responses[i];
      row.id = response.id;
      row.ok = response.status.ok();
      if (!row.ok) {
        row.error = response.status.ToString();
        ++manifest->num_failed;
      } else {
        row.calibration_key = response.calibration_key;
        row.cache_hit = response.cache_hit;
        row.spatially_fair = response.result.spatially_fair;
        row.p_value = response.result.p_value;
        row.p_value_method =
            SignificanceMethodToString(response.result.p_value_method);
        row.tail_fit_ok = response.result.tail_fit_ok;
        if (response.result.p_value_method ==
            SignificanceMethod::kGumbelTail) {
          ++manifest->tail_fits;
        }
        row.tau = response.result.tau;
        row.total_n = response.result.total_n;
        row.total_p = response.result.total_p;
        row.num_findings = response.result.findings.size();
        row.assemble_ms = response.assemble_ms;
      }
      manifest->rows.push_back(std::move(row));
    }
    manifest->wall_ms = wall.ElapsedMillis();
  }
  return responses;
}

// -------------------------------------------------------------- streaming --

std::shared_ptr<AuditPipeline::Stream> AuditPipeline::CurrentStream() const {
  std::unique_lock<std::mutex> lock(stream_ptr_mu_);
  return stream_;
}

Status AuditPipeline::StartStream(const StreamOptions& options) {
  if (streaming()) {
    return Status::FailedPrecondition("streaming session already active");
  }
  StreamOptions opts = options;
  if (opts.num_workers == 0) opts.num_workers = 1;
  auto stream = std::make_shared<Stream>(opts);
  stream->paused = opts.start_paused;
  Stream* s = stream.get();
  s->workers.reserve(opts.num_workers);
  for (size_t w = 0; w < opts.num_workers; ++w) {
    s->workers.emplace_back([this, s] { StreamWorkerLoop(s); });
  }
  std::unique_lock<std::mutex> lock(stream_ptr_mu_);
  stream_ = std::move(stream);
  return Status::OK();
}

Result<std::shared_ptr<AuditTicket>> AuditPipeline::Submit(
    AuditRequest request, RequestPriority priority, AuditCallback callback) {
  // Hold a reference for the whole call: a submitter woken from a blocking
  // Push by a concurrent teardown (queue closed) must still find the Stream
  // alive to record its rejection.
  const std::shared_ptr<Stream> stream = CurrentStream();
  Stream* s = stream.get();
  if (s == nullptr) {
    return Status::FailedPrecondition("Submit() without an active stream");
  }
  {
    std::unique_lock<std::mutex> lock(s->mu);
    if (!s->accepting) {
      // Racing a teardown: fail fast without touching stats, so the final
      // snapshot's invariants (header contract) hold exactly.
      return Status::FailedPrecondition("stream is shutting down");
    }
    ++s->stats.submitted;
    ++s->inflight_submits;
  }
  StreamEntry entry;
  entry.request = std::move(request);
  entry.priority = priority;
  entry.ticket = std::make_shared<AuditTicket>();
  entry.callback = std::move(callback);
  // Exact under serialized submission (e.g. paused dispatch, one producer);
  // approximate when producers and workers race — diagnostic either way.
  entry.depth_at_admission = s->queue.size() + 1;
  entry.admitted_at = std::chrono::steady_clock::now();
  entry.deadline = DeadlineFor(entry.request.deadline_ms, entry.admitted_at);

  // Admission deadline gate: an already-expired request (negative
  // deadline_ms, or a racing clock) is bounced before it can occupy a queue
  // slot. Counted as rejected so admitted + rejected == submitted holds.
  if (DeadlineExpired(entry.deadline)) {
    std::unique_lock<std::mutex> lock(s->mu);
    ++s->stats.rejected;
    ++s->stats.deadline_misses;
    if (--s->inflight_submits == 0 && !s->accepting) {
      s->resume_cv.notify_all();
    }
    return Status::DeadlineExceeded(
        StrFormat("request '%s' expired at admission (deadline %.3f ms)",
                  entry.request.id.c_str(), entry.request.deadline_ms));
  }
  std::shared_ptr<AuditTicket> ticket = entry.ticket;

  const size_t lane = static_cast<size_t>(priority);
  const QueuePush outcome =
      s->options.block_when_full ? s->queue.Push(lane, std::move(entry))
                                 : s->queue.TryPush(lane, std::move(entry));
  Result<std::shared_ptr<AuditTicket>> result =
      Status::Internal("unreachable admission outcome");
  {
    std::unique_lock<std::mutex> lock(s->mu);
    switch (outcome) {
      case QueuePush::kAdmitted: {
        ++s->stats.admitted;
        const size_t depth = s->queue.size();
        if (depth > s->stats.max_queue_depth) s->stats.max_queue_depth = depth;
        result = ticket;
        break;
      }
      case QueuePush::kRejected:
        ++s->stats.rejected;
        result = Status::ResourceExhausted(
            StrFormat("admission queue full (capacity %zu); request rejected "
                      "by backpressure policy",
                      s->options.queue_capacity));
        break;
      case QueuePush::kClosed:
        // Woken (or bounced) by a concurrent teardown closing the queue.
        ++s->stats.rejected;
        result = Status::FailedPrecondition("stream is shutting down");
        break;
    }
    if (--s->inflight_submits == 0 && !s->accepting) {
      // A tearing-down controller may be waiting for submit quiescence.
      s->resume_cv.notify_all();
    }
  }
  return result;
}

Status AuditPipeline::Cancel(const std::shared_ptr<AuditTicket>& ticket) {
  if (ticket == nullptr) {
    return Status::InvalidArgument("Cancel() of a null ticket");
  }
  const std::shared_ptr<Stream> stream = CurrentStream();
  Stream* s = stream.get();
  if (s == nullptr) {
    return Status::FailedPrecondition("Cancel() without an active stream");
  }
  {
    // Join the teardown quiescence protocol exactly like Submit: past this
    // gate the cancellation's stat update and ticket completion are counted
    // as in-flight, so a concurrent FinishStream/AbortStream waits for them
    // before snapshotting final stats — the completed+failed+cancelled ==
    // admitted invariant holds in the snapshot.
    std::unique_lock<std::mutex> lock(s->mu);
    if (!s->accepting) {
      return Status::FailedPrecondition("stream is shutting down");
    }
    ++s->inflight_submits;
  }
  const auto leave_quiescence_gate = [&] {
    std::unique_lock<std::mutex> lock(s->mu);
    if (--s->inflight_submits == 0 && !s->accepting) {
      s->resume_cv.notify_all();
    }
  };
  StreamEntry entry;
  if (!s->queue.RemoveIf(
          [&](const StreamEntry& e) { return e.ticket == ticket; }, &entry)) {
    leave_quiescence_gate();
    return Status::NotFound(
        "ticket is not queued (already dispatched, finished, cancelled, or "
        "not from this session)");
  }
  // The entry is exclusively ours now: the queue removal is atomic against
  // Pop, so no worker can also complete this ticket.
  AuditResponse response;
  response.id = entry.request.id;
  response.status =
      Status::Cancelled("request cancelled by Cancel() before dispatch");
  response.priority = entry.priority;
  response.queue_depth = entry.depth_at_admission;
  response.queue_wait_ms = MillisSince(entry.admitted_at);
  {
    std::unique_lock<std::mutex> lock(s->mu);
    ++s->stats.cancelled;
  }
  entry.ticket->Complete(std::move(response));
  if (entry.callback) entry.callback(entry.ticket->Get());
  leave_quiescence_gate();
  return Status::OK();
}

void AuditPipeline::ResumeDispatch() {
  const std::shared_ptr<Stream> stream = CurrentStream();
  Stream* s = stream.get();
  if (s == nullptr) return;
  {
    std::unique_lock<std::mutex> lock(s->mu);
    s->paused = false;
  }
  s->resume_cv.notify_all();
}

Status AuditPipeline::FinishStream() {
  if (!streaming()) {
    return Status::FailedPrecondition("FinishStream() without an active stream");
  }
  TeardownStream(/*abort=*/false);
  return Status::OK();
}

Status AuditPipeline::Drain(double deadline_ms) {
  if (!streaming()) {
    return Status::FailedPrecondition("Drain() without an active stream");
  }
  TeardownStream(/*abort=*/false, deadline_ms);
  return Status::OK();
}

void AuditPipeline::AbortStream() {
  if (!streaming()) return;
  TeardownStream(/*abort=*/true);
}

void AuditPipeline::TeardownStream(bool abort, double drain_deadline_ms) {
  const std::shared_ptr<Stream> stream = CurrentStream();
  Stream* s = stream.get();
  if (s == nullptr) return;
  {
    // Gate state (accepting, cancel, paused) changes under s->mu: these are
    // CV predicates, and a predicate mutated outside its mutex can race a
    // waiter's check-then-block window and lose the wakeup forever (the
    // abort path would then hang in the worker join below).
    std::unique_lock<std::mutex> lock(s->mu);
    s->accepting = false;
    if (abort) {
      s->cancel.Cancel();
    } else {
      // A paused session must drain before the join below can return.
      s->paused = false;
    }
  }
  s->queue.Close();
  s->resume_cv.notify_all();
  // Drain watchdog: when the graceful drain overruns its budget, flip the
  // session to cancelled — in-flight calibrations stop at the next world-
  // batch boundary (releasing any cross-process leases on the way out) and
  // still-queued requests resolve as cancelled — so the join below is
  // bounded by the budget plus one batch, not by the queue's backlog.
  std::thread watchdog;
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool drained = false;
  if (!abort && drain_deadline_ms > 0.0) {
    watchdog = std::thread([&] {
      std::unique_lock<std::mutex> lock(watchdog_mu);
      if (watchdog_cv.wait_for(
              lock,
              std::chrono::duration<double, std::milli>(drain_deadline_ms),
              [&] { return drained; })) {
        return;  // drain finished inside the budget
      }
      {
        // The cancel transition is a CV predicate: mutate under s->mu.
        std::unique_lock<std::mutex> slock(s->mu);
        s->cancel.Cancel();
      }
      s->resume_cv.notify_all();
    });
  }
  for (std::thread& worker : s->workers) worker.join();
  if (watchdog.joinable()) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu);
      drained = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  // Streaming sessions are durability boundaries: queued write-behind
  // persists land before the session reports finished.
  cache_.FlushStore();
  StreamStats final_stats;
  {
    // Submit quiescence: producers woken from a blocking Push by the queue
    // close may still be about to record their rejection; the snapshot must
    // include them or the documented invariants break.
    std::unique_lock<std::mutex> lock(s->mu);
    s->resume_cv.wait(lock, [&] { return s->inflight_submits == 0; });
    final_stats = s->stats;
  }
  FillStoreHealth(&final_stats);
  std::unique_lock<std::mutex> ptr_lock(stream_ptr_mu_);
  last_stream_stats_ = final_stats;
  stream_.reset();
  // Late submitters may still hold `stream` (they fail fast on the cleared
  // accepting gate); the Stream is freed when the last reference drops.
}

void AuditPipeline::FillStoreHealth(StreamStats* stats) const {
  const std::shared_ptr<CalibrationStore>& store = cache_.store();
  if (store == nullptr) return;
  const CalibrationStore::Stats st = store->stats();
  stats->store_retries = st.store_retries;
  stats->store_quarantined = st.quarantined;
  stats->breaker_trips = st.breaker_trips;
  stats->breaker_open = st.breaker_open;
  stats->temps_reaped = st.temps_reaped;
  stats->leases_reclaimed = st.leases_reclaimed;
  stats->lease_takeovers = st.lease_takeovers;
  stats->quarantine_evicted = st.quarantine_evicted_files;
}

StreamStats AuditPipeline::stream_stats() const {
  const std::shared_ptr<Stream> stream = CurrentStream();
  const Stream* s = stream.get();
  StreamStats snapshot;
  if (s == nullptr) {
    std::unique_lock<std::mutex> lock(stream_ptr_mu_);
    snapshot = last_stream_stats_;
  } else {
    std::unique_lock<std::mutex> lock(s->mu);
    snapshot = s->stats;
  }
  // Store health is re-snapshotted at read time: breaker transitions and
  // retries keep happening (write-behind) after the session counters freeze.
  FillStoreHealth(&snapshot);
  return snapshot;
}

void AuditPipeline::StreamWorkerLoop(Stream* s) {
  StreamEntry entry;
  for (;;) {
    {
      // The dispatch gate: a paused session admits but never pops, so the
      // queue's occupancy (and therefore every admission decision) is a
      // deterministic function of the submission sequence.
      std::unique_lock<std::mutex> lock(s->mu);
      s->resume_cv.wait(lock,
                        [&] { return !s->paused || s->cancel.cancelled(); });
    }
    if (!s->queue.Pop(&entry)) return;  // closed and drained

    AuditResponse response;
    const double wait_ms = MillisSince(entry.admitted_at);
    const bool cancelled = s->cancel.cancelled();
    // Dispatch-boundary failpoint: delay widens the dequeue race window
    // (deadline reaping under TSan); an error action fails the request as if
    // dispatch itself broke.
    Status injected;
    if (!cancelled) {
      SFA_FAILPOINT_WITH("pipeline.dispatch", {
        if (fp_action.kind == FailpointActionKind::kError) {
          injected = fp_action.status;
        }
      });
    }
    if (cancelled) {
      response.id = entry.request.id;
      response.status = Status::FailedPrecondition(
          "stream aborted before the request was dispatched");
    } else if (!injected.ok()) {
      response.id = entry.request.id;
      response.status = std::move(injected);
    } else if (DeadlineExpired(entry.deadline)) {
      // Lazy reaping: the deadline expired while the request sat in the
      // queue. Resolve it without executing — the worker (and the Monte
      // Carlo pool underneath) stays free for requests that can still make
      // their deadlines.
      response.id = entry.request.id;
      response.status = Status::DeadlineExceeded(StrFormat(
          "request '%s' expired in queue after %.2f ms (deadline %.3f ms)",
          entry.request.id.c_str(), wait_ms, entry.request.deadline_ms));
    } else {
      response = ExecuteStreamRequest(s, entry);
    }
    response.priority = entry.priority;
    response.queue_depth = entry.depth_at_admission;
    response.queue_wait_ms = wait_ms;
    {
      std::unique_lock<std::mutex> lock(s->mu);
      if (cancelled) {
        ++s->stats.cancelled;
      } else if (response.status.ok()) {
        ++s->stats.completed;
        if (response.degraded) {
          ++s->stats.degraded;
          ++s->stats.deadline_misses;  // the deadline DID expire mid-flight
        }
        if (response.result.p_value_method == SignificanceMethod::kGumbelTail) {
          ++s->stats.tail_fits;
        }
        // Count worlds saved only where THIS response simulated them away:
        // a cache/store hit's savings were banked when it was computed.
        if (!response.cache_hit && !response.degraded &&
            response.result.null_distribution.early_stopped()) {
          ++s->stats.early_stops;
          s->stats.worlds_saved +=
              response.result.null_distribution.worlds_requested() -
              response.result.null_distribution.num_worlds();
        }
      } else {
        ++s->stats.failed;
        if (response.status.IsDeadlineExceeded()) ++s->stats.deadline_misses;
      }
    }
    // Complete the ticket first so a callback observing done() sees it.
    entry.ticket->Complete(std::move(response));
    if (entry.callback) entry.callback(entry.ticket->Get());
    entry = StreamEntry();  // drop borrowed pointers before the next wait
  }
}

AuditResponse AuditPipeline::ExecuteStreamRequest(Stream* s,
                                                  const StreamEntry& entry) {
  AuditResponse response;
  const AuditRequest& request = entry.request;
  response.id = request.id;
  if (request.dataset == nullptr || request.family == nullptr) {
    response.status = Status::InvalidArgument(StrFormat(
        "request '%s' has a null dataset or family", request.id.c_str()));
    return response;
  }

  // Fingerprint memo: the probe-world pass is the expensive part of a key
  // and depends only on the immutable family. Racing workers may both
  // compute a missing entry — the value is identical, the second insert is
  // a no-op.
  uint64_t fingerprint = 0;
  bool have_fingerprint = false;
  {
    std::unique_lock<std::mutex> lock(s->mu);
    auto it = s->fingerprints.find(request.family);
    if (it != s->fingerprints.end()) {
      fingerprint = it->second;
      have_fingerprint = true;
    }
  }
  if (!have_fingerprint) {
    fingerprint = FamilyFingerprint(*request.family);
    std::unique_lock<std::mutex> lock(s->mu);
    s->fingerprints.emplace(request.family, fingerprint);
  }

  Prep prep;
  PrepareRequest(request, fingerprint, &prep);
  if (!prep.status.ok()) {
    response.status = prep.status;
    return response;
  }
  response.calibration_key = prep.key.debug;

  // The prepare phase resolved the adaptive stopping rule (observed τ,
  // alpha) into prep.mc and keyed the calibration from it; execute with the
  // same copy so key and simulation can never disagree.
  MonteCarloOptions mc = prep.mc;
  mc.parallel = mc.parallel && options_.parallel;
  // Cooperative stop wiring: the session's abort token and this request's
  // own deadline reach the world engine, which polls them at batch
  // boundaries (execution-only — neither is part of the calibration key).
  mc.cancel = &s->cancel;
  mc.deadline = entry.deadline;

  // Single-flight sharing cuts both ways: a joiner waiting on an owner's
  // computation can be handed the OWNER's stop (its deadline, its cancel) —
  // an error that says nothing about this request's own budget. Such foreign
  // stops are retried (the failed slot was erased, so a retry either joins a
  // fresh owner or becomes the owner itself and computes under ITS OWN
  // deadline); own stops are terminal. The retry cap only guards against
  // pathological scheduling — each owner attempt is terminal, so the loop
  // cannot spin on one slot.
  static constexpr int kMaxForeignStopRetries = 4;
  CalibrationCache::Source source = CalibrationCache::Source::kMemory;
  PartialCalibration partial;
  bool computed_here = false;
  const auto compute =
      [&](const ComputeContext& context) -> Result<NullDistribution> {
    computed_here = true;
    partial = PartialCalibration();
    // Fabric liveness: the lease heartbeat (when a lease-enabled store made
    // this process the cross-process owner) fires at world-batch boundaries.
    mc.heartbeat = context.heartbeat;
    return SimulateNull(*prep.statistic, *request.family, mc, &partial);
  };
  // While a FOREIGN process holds the key's lease we poll its progress; this
  // predicate bails out of that wait the moment our own request is cancelled
  // or deadlined, so drains and deadlines never block on a peer.
  const auto wait_stopped = [&] {
    return s->cancel.cancelled() || DeadlineExpired(entry.deadline);
  };
  Result<std::shared_ptr<const NullDistribution>> calibration =
      Status::Internal("calibration loop never ran");
  for (int attempt = 0;; ++attempt) {
    computed_here = false;
    calibration = cache_.GetOrCompute(prep.key, compute, &source, wait_stopped);
    if (calibration.ok()) break;
    const Status& cause = calibration.status();
    const bool foreign_stop =
        !computed_here &&
        (cause.IsDeadlineExceeded() || cause.IsCancelled());
    if (!foreign_stop || attempt >= kMaxForeignStopRetries ||
        s->cancel.cancelled() || DeadlineExpired(entry.deadline)) {
      break;
    }
  }

  static thread_local AuditScratch scratch;
  if (!calibration.ok()) {
    // Graceful degradation: our own deadline stopped our own simulation and
    // the caller opted in — rank the observed statistic against the
    // completed contiguous world prefix. The payload is a pure function of
    // (request, worlds_completed); the error path stays authoritative when
    // not even one world finished.
    if (computed_here && calibration.status().IsDeadlineExceeded() &&
        request.allow_degraded && partial.worlds_completed > 0) {
      Stopwatch timer;
      const NullDistribution partial_null(std::move(partial.maxima));
      auto degraded_result =
          Auditor(request.options)
              .AuditView(*prep.view, *request.family, prep.statistic.get(),
                         &partial_null, &scratch);
      if (degraded_result.ok()) {
        response.result = std::move(degraded_result).value();
        response.degraded = true;
        response.worlds_completed = partial.worlds_completed;
        response.cache_hit = false;
        response.assemble_ms = timer.ElapsedMillis();
        return response;
      }
    }
    response.status = calibration.status();
    return response;
  }
  response.cache_hit = source != CalibrationCache::Source::kComputed;
  response.worlds_completed = (*calibration)->num_worlds();

  Stopwatch timer;
  auto result = Auditor(request.options)
                    .AuditView(*prep.view, *request.family,
                               prep.statistic.get(), calibration->get(),
                               &scratch);
  if (!result.ok()) {
    response.status = result.status();
    return response;
  }
  response.result = std::move(result).value();
  response.assemble_ms = timer.ElapsedMillis();
  return response;
}

}  // namespace sfa::core
