#include "core/audit_pipeline.h"

#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/export.h"
#include "core/measure.h"

namespace sfa::core {

namespace {

/// Per-request state threaded between the pipeline phases.
struct Prep {
  Status status = Status::OK();
  /// Materialized measure view (only when filtering was required).
  data::OutcomeDataset view_storage;
  /// The view audited: &view_storage or the request's dataset.
  const data::OutcomeDataset* view = nullptr;
  CalibrationKey key;
  uint64_t total_n = 0;
  uint64_t total_p = 0;
};

/// One unique calibration of the batch.
struct UniqueCalibration {
  CalibrationKey key;
  const RegionFamily* family = nullptr;
  double rho = 0.0;
  uint64_t total_p = 0;
  stats::ScanDirection direction = stats::ScanDirection::kTwoSided;
  MonteCarloOptions mc;
  size_t first_request = 0;  ///< request index that introduced the key
  bool warm = false;         ///< served from the cache of a previous Run
  std::shared_ptr<const NullDistribution> value;
  Status status = Status::OK();
};

void PrepareRequest(const AuditRequest& req, uint64_t family_fingerprint,
                    Prep* prep) {
  if (req.dataset_is_view ||
      req.options.measure == FairnessMeasure::kStatisticalParity) {
    // Statistical parity audits every individual on the prediction bit —
    // the dataset IS the view; skip the copy BuildMeasureView would make.
    prep->view = req.dataset;
  } else {
    auto view = BuildMeasureView(*req.dataset, req.options.measure);
    if (!view.ok()) {
      prep->status = view.status();
      return;
    }
    prep->view_storage = std::move(view).value();
    prep->view = &prep->view_storage;
  }
  if (prep->view->size() != req.family->num_points()) {
    prep->status = Status::InvalidArgument(StrFormat(
        "request '%s': family is bound to %zu points but the measure view "
        "has %zu",
        req.id.c_str(), req.family->num_points(), prep->view->size()));
    return;
  }
  if (prep->view->empty()) {
    prep->status =
        Status::InvalidArgument(StrFormat("request '%s': empty audit view",
                                          req.id.c_str()));
    return;
  }
  prep->total_n = prep->view->size();
  prep->total_p = prep->view->PositiveCount();
  prep->key = MakeCalibrationKey(*req.family, family_fingerprint,
                                 prep->total_n, prep->total_p,
                                 req.options.direction,
                                 req.options.monte_carlo);
}

}  // namespace

double PipelineManifest::HitRate() const {
  const uint64_t total = calibrations_computed + calibrations_reused;
  return total == 0 ? 0.0
                    : static_cast<double>(calibrations_reused) /
                          static_cast<double>(total);
}

std::string PipelineManifest::ToJson() const {
  std::string out;
  out.reserve(256 + rows.size() * 256);
  out += StrFormat(
      "{\"num_requests\":%zu,\"num_failed\":%zu,\"parallel\":%s,"
      "\"wall_ms\":%.3f,\"calibrations\":{\"computed\":%llu,\"reused\":%llu,"
      "\"hit_rate\":%.4f},\"cache\":{\"hits\":%llu,\"misses\":%llu,"
      "\"entries\":%llu},\"requests\":[",
      num_requests, num_failed, parallel ? "true" : "false", wall_ms,
      static_cast<unsigned long long>(calibrations_computed),
      static_cast<unsigned long long>(calibrations_reused), HitRate(),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.entries));
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (i > 0) out += ',';
    if (!row.ok) {
      out += StrFormat("{\"id\":\"%s\",\"ok\":false,\"error\":\"%s\"}",
                       JsonEscape(row.id).c_str(),
                       JsonEscape(row.error).c_str());
      continue;
    }
    out += StrFormat(
        "{\"id\":\"%s\",\"ok\":true,\"calibration_key\":\"%s\","
        "\"cache_hit\":%s,\"spatially_fair\":%s,\"p_value\":%.17g,"
        "\"tau\":%.17g,\"n\":%llu,\"p\":%llu,\"num_findings\":%zu,"
        "\"assemble_ms\":%.3f}",
        JsonEscape(row.id).c_str(), JsonEscape(row.calibration_key).c_str(),
        row.cache_hit ? "true" : "false",
        row.spatially_fair ? "true" : "false", row.p_value, row.tau,
        static_cast<unsigned long long>(row.total_n),
        static_cast<unsigned long long>(row.total_p), row.num_findings,
        row.assemble_ms);
  }
  out += "]}";
  return out;
}

Result<std::vector<AuditResponse>> AuditPipeline::Run(
    const std::vector<AuditRequest>& batch, PipelineManifest* manifest) {
  Stopwatch wall;
  // Structural misuse fails the whole batch: there is no per-request result
  // to attach an error to when the request itself is not addressable.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].dataset == nullptr || batch[i].family == nullptr) {
      return Status::InvalidArgument(
          StrFormat("request %zu ('%s') has a null dataset or family", i,
                    batch[i].id.c_str()));
    }
  }

  ThreadPool& pool = DefaultThreadPool();
  const bool parallel = options_.parallel;
  auto for_each = [&](size_t n, const std::function<void(size_t)>& fn) {
    if (parallel) {
      pool.ParallelFor(n, fn);
    } else {
      for (size_t i = 0; i < n; ++i) fn(i);
    }
  };

  // Phase 1 — prepare: family fingerprints (once per distinct family — the
  // probe worlds are the expensive part of a key and depend only on the
  // immutable family), then per-request measure views, totals, and keys.
  std::unordered_map<const RegionFamily*, uint64_t> fingerprints;
  std::vector<const RegionFamily*> distinct_families;
  for (const AuditRequest& req : batch) {
    if (fingerprints.emplace(req.family, 0).second) {
      distinct_families.push_back(req.family);
    }
  }
  for_each(distinct_families.size(), [&](size_t f) {
    // Distinct keys: concurrent writes touch distinct, pre-inserted map
    // slots; the map's structure is frozen here (find, never insert).
    fingerprints.find(distinct_families[f])->second =
        FamilyFingerprint(*distinct_families[f]);
  });
  std::vector<Prep> preps(batch.size());
  for_each(batch.size(), [&](size_t i) {
    PrepareRequest(batch[i], fingerprints.at(batch[i].family), &preps[i]);
  });

  // Phase 2 — calibrate: dedupe keys (first-occurrence order, so manifests
  // are stable), serve warm entries from the cache, simulate the rest. The
  // outer loop parallelizes across unique calibrations while each
  // simulation's world engine fans out onto the same pool underneath.
  std::vector<UniqueCalibration> uniques;
  std::unordered_map<std::string, size_t> key_to_unique;
  std::vector<size_t> request_unique(batch.size(), SIZE_MAX);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!preps[i].status.ok()) continue;
    auto [it, inserted] =
        key_to_unique.emplace(preps[i].key.debug, uniques.size());
    if (inserted) {
      UniqueCalibration cal;
      cal.key = preps[i].key;
      cal.family = batch[i].family;
      cal.rho = preps[i].total_n == 0
                    ? 0.0
                    : static_cast<double>(preps[i].total_p) /
                          static_cast<double>(preps[i].total_n);
      cal.total_p = preps[i].total_p;
      cal.direction = batch[i].options.direction;
      cal.mc = batch[i].options.monte_carlo;
      // Honor the pipeline-level parallel switch inside the world engine
      // too; execution-only, never part of the key or the results.
      cal.mc.parallel = cal.mc.parallel && parallel;
      cal.first_request = i;
      cal.value = cache_.Lookup(cal.key);
      cal.warm = cal.value != nullptr;
      uniques.push_back(std::move(cal));
    }
    request_unique[i] = it->second;
  }
  std::vector<size_t> misses;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (!uniques[u].warm) misses.push_back(u);
  }
  for_each(misses.size(), [&](size_t m) {
    UniqueCalibration& cal = uniques[misses[m]];
    auto computed = cache_.GetOrCompute(cal.key, [&] {
      return SimulateNull(*cal.family, cal.rho, cal.total_p, cal.direction,
                          cal.mc);
    });
    if (computed.ok()) {
      cal.value = std::move(computed).value();
    } else {
      cal.status = computed.status();
    }
  });

  // Phase 3 — assemble: full audit per request with the shared calibration
  // injected; per-worker scratch recycles observed-world buffers.
  std::vector<AuditResponse> responses(batch.size());
  for_each(batch.size(), [&](size_t i) {
    static thread_local AuditScratch scratch;
    Stopwatch timer;
    AuditResponse& response = responses[i];
    response.id = batch[i].id;
    if (!preps[i].status.ok()) {
      response.status = preps[i].status;
      return;
    }
    const UniqueCalibration& cal = uniques[request_unique[i]];
    response.calibration_key = cal.key.debug;
    response.cache_hit = cal.warm || i != cal.first_request;
    if (!cal.status.ok()) {
      response.status = cal.status;
      return;
    }
    auto result = Auditor(batch[i].options)
                      .AuditView(*preps[i].view, *batch[i].family,
                                 cal.value.get(), &scratch);
    if (!result.ok()) {
      response.status = result.status();
      return;
    }
    response.result = std::move(result).value();
    response.assemble_ms = timer.ElapsedMillis();
  });

  if (manifest != nullptr) {
    manifest->num_requests = batch.size();
    manifest->num_failed = 0;
    manifest->parallel = parallel;
    manifest->calibrations_computed = 0;
    for (const UniqueCalibration& cal : uniques) {
      if (!cal.warm && cal.status.ok()) ++manifest->calibrations_computed;
    }
    uint64_t served = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (preps[i].status.ok() && responses[i].status.ok()) ++served;
    }
    manifest->calibrations_reused =
        served >= manifest->calibrations_computed
            ? served - manifest->calibrations_computed
            : 0;
    manifest->cache = cache_.stats();
    manifest->rows.clear();
    manifest->rows.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      PipelineManifest::Row row;
      const AuditResponse& response = responses[i];
      row.id = response.id;
      row.ok = response.status.ok();
      if (!row.ok) {
        row.error = response.status.ToString();
        ++manifest->num_failed;
      } else {
        row.calibration_key = response.calibration_key;
        row.cache_hit = response.cache_hit;
        row.spatially_fair = response.result.spatially_fair;
        row.p_value = response.result.p_value;
        row.tau = response.result.tau;
        row.total_n = response.result.total_n;
        row.total_p = response.result.total_p;
        row.num_findings = response.result.findings.size();
        row.assemble_ms = response.assemble_ms;
      }
      manifest->rows.push_back(std::move(row));
    }
    manifest->wall_ms = wall.ElapsedMillis();
  }
  return responses;
}

}  // namespace sfa::core
