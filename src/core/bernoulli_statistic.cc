#include "core/bernoulli_statistic.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "stats/distributions.h"

namespace sfa::core {

namespace {

/// Max Λ over all regions from a row of positive counts, using the shared
/// k·log k table. Region point counts are pre-gathered into `region_n` so the
/// hot loop makes no virtual calls.
double MaxLlrFromCounts(const uint64_t* positives,
                        const std::vector<uint64_t>& region_n, uint64_t total_n,
                        uint64_t total_p, stats::ScanDirection direction,
                        const stats::LogLikelihoodTable& table) {
  double max_llr = 0.0;
  const size_t num_regions = region_n.size();
  // Inlined table LLR with the per-world constant null term hoisted out of
  // the region loop. Operation order matches
  // stats::BernoulliLogLikelihoodRatio(counts, direction, table) exactly —
  // (ll_in + ll_out) - null with the same gating — so maxima are bit-equal
  // to the stats-layer evaluation (asserted by test_mc_engine.cc).
  const double null_ll = table.MaxBernoulliLogLikelihood(total_p, total_n);
  for (size_t r = 0; r < num_regions; ++r) {
    const uint64_t n = region_n[r];
    const uint64_t p = positives[r];
    const uint64_t n_out = total_n - n;
    const uint64_t p_out = total_p - p;
    if (n == 0 || n_out == 0) continue;
    const auto lhs = static_cast<unsigned __int128>(p) * n_out;
    const auto rhs = static_cast<unsigned __int128>(p_out) * n;
    if (lhs == rhs) continue;
    if (direction == stats::ScanDirection::kHigh && lhs < rhs) continue;
    if (direction == stats::ScanDirection::kLow && lhs > rhs) continue;
    const double llr = table.MaxBernoulliLogLikelihood(p, n) +
                       table.MaxBernoulliLogLikelihood(p_out, n_out) - null_ll;
    if (llr > max_llr) max_llr = llr;
  }
  return max_llr;
}

/// Per-cell Binomial(n_c, ρ) samplers, built once per simulation: (n_c, ρ)
/// never change across worlds, so each cell's alias table turns every world's
/// draw into one uniform + two loads (stats::FixedBinomialSampler). The last
/// sampler covers the points outside every cell (they shift total P only).
struct CellSamplerBank {
  std::vector<stats::FixedBinomialSampler> cells;
  stats::FixedBinomialSampler outside;

  CellSamplerBank(const CellDecomposition& decomposition, double rho) {
    cells.reserve(decomposition.cell_counts.size());
    for (uint32_t n_c : decomposition.cell_counts) {
      cells.emplace_back(n_c, rho);
    }
    if (decomposition.num_outside > 0) {
      outside = stats::FixedBinomialSampler(decomposition.num_outside, rho);
    }
  }
};

/// Draws one closed-form Bernoulli null world over a cell decomposition.
/// Returns the world's total positive count. Cell order is fixed, so for a
/// given per-world RNG the draw is identical in every engine.
uint64_t DrawCellWorld(const CellSamplerBank& bank, Rng* rng,
                       uint32_t* cell_positives) {
  uint64_t total_p = 0;
  const size_t num_cells = bank.cells.size();
  for (size_t c = 0; c < num_cells; ++c) {
    const auto p = static_cast<uint32_t>(bank.cells[c].Draw(rng));
    cell_positives[c] = p;
    total_p += p;
  }
  total_p += bank.outside.Draw(rng);
  return total_p;
}

/// Thread-local buffer pool: label worlds, count rows, cell draws, and the
/// permutation shuffle buffer all live here, so after a worker's first batch
/// the steady state allocates nothing.
struct BatchArena {
  std::vector<Labels> labels;
  std::vector<const Labels*> label_ptrs;
  std::vector<uint64_t> counts;          // batch x num_regions, row-major
  std::vector<uint32_t> cell_positives;  // one world's cell draws
  std::vector<uint64_t> region_counts;   // one world's folded region counts
  std::vector<uint32_t> perm_scratch;
};

BatchArena& LocalArena() {
  static thread_local BatchArena arena;
  return arena;
}

/// Everything per-world execution needs, precomputed once per simulation and
/// shared read-only across worker threads (the original mc_engine
/// SimulationContext, re-seated behind StatisticSimulation verbatim — its
/// RNG streams and table arithmetic are pinned by the golden and determinism
/// suites).
class BernoulliSimulation : public StatisticSimulation {
 public:
  BernoulliSimulation(const RegionFamily& family, double rho,
                      uint64_t total_positives, stats::ScanDirection direction,
                      const MonteCarloOptions& options)
      : family_(family),
        rho_(rho),
        total_positives_(total_positives),
        direction_(direction),
        options_(options),
        table_(family.num_points()),
        cells_(options.closed_form_cells &&
                       options.null_model == NullModel::kBernoulli
                   ? family.cell_decomposition()
                   : nullptr),
        root_(options.seed) {
    region_n_.resize(family_.num_regions());
    for (size_t r = 0; r < region_n_.size(); ++r) {
      region_n_[r] = family_.PointCount(r);
    }
    if (cells_ != nullptr) {
      samplers_ = std::make_unique<CellSamplerBank>(*cells_, rho_);
    }
  }

  /// The reference strategy: one world at a time, fresh buffers per world,
  /// the family's scalar counting interface. Kept as the semantic baseline
  /// the batched strategy must match bit-for-bit.
  double RunWorldReference(size_t w) const override {
    Rng rng = root_.Split(w);
    const size_t num_regions = family_.num_regions();
    const uint64_t total_n = family_.num_points();
    if (cells_ != nullptr) {
      std::vector<uint32_t> cell_positives(cells_->cell_counts.size());
      const uint64_t total_p =
          DrawCellWorld(*samplers_, &rng, cell_positives.data());
      std::vector<uint64_t> counts(num_regions);
      family_.CountPositivesFromCells(cell_positives.data(), counts.data());
      return MaxLlrFromCounts(counts.data(), region_n_, total_n, total_p,
                              direction_, table_);
    }
    const Labels labels =
        options_.null_model == NullModel::kBernoulli
            ? Labels::SampleBernoulli(total_n, rho_, &rng)
            : Labels::SamplePermutation(total_n, total_positives_, &rng);
    std::vector<uint64_t> counts;
    family_.CountPositives(labels, &counts);
    return MaxLlrFromCounts(counts.data(), region_n_, total_n,
                            labels.positive_count(), direction_, table_);
  }

  void RunWorldBatch(size_t w_lo, size_t w_hi, double* out) const override {
    const size_t worlds = w_hi - w_lo;
    const size_t num_regions = family_.num_regions();
    const uint64_t total_n = family_.num_points();
    BatchArena& arena = LocalArena();

    if (cells_ != nullptr) {
      // Closed-form worlds: O(cells) sampling dominates and has no
      // cross-world memory traffic to amortize, so the batch is a plain loop
      // over pooled buffers.
      arena.cell_positives.resize(cells_->cell_counts.size());
      arena.region_counts.resize(num_regions);
      for (size_t w = w_lo; w < w_hi; ++w) {
        Rng rng = root_.Split(w);
        const uint64_t total_p =
            DrawCellWorld(*samplers_, &rng, arena.cell_positives.data());
        family_.CountPositivesFromCells(arena.cell_positives.data(),
                                        arena.region_counts.data());
        out[w] = MaxLlrFromCounts(arena.region_counts.data(), region_n_,
                                  total_n, total_p, direction_, table_);
      }
      return;
    }

    if (arena.labels.size() < worlds) arena.labels.resize(worlds);
    arena.label_ptrs.resize(worlds);
    arena.counts.resize(worlds * num_regions);
    for (size_t j = 0; j < worlds; ++j) {
      Rng rng = root_.Split(w_lo + j);
      if (options_.null_model == NullModel::kBernoulli) {
        arena.labels[j].ResampleBernoulli(total_n, rho_, &rng);
      } else {
        arena.labels[j].ResamplePermutation(total_n, total_positives_, &rng,
                                            &arena.perm_scratch);
      }
      arena.label_ptrs[j] = &arena.labels[j];
    }
    family_.CountPositivesBatch(arena.label_ptrs.data(), worlds,
                                arena.counts.data());
    for (size_t j = 0; j < worlds; ++j) {
      out[w_lo + j] = MaxLlrFromCounts(
          arena.counts.data() + j * num_regions, region_n_, total_n,
          arena.labels[j].positive_count(), direction_, table_);
    }
  }

 private:
  const RegionFamily& family_;
  double rho_;
  uint64_t total_positives_;
  stats::ScanDirection direction_;
  MonteCarloOptions options_;
  stats::LogLikelihoodTable table_;
  std::vector<uint64_t> region_n_;
  const CellDecomposition* cells_;  // non-null => closed-form sampling
  std::unique_ptr<CellSamplerBank> samplers_;  // non-null iff cells_ is
  Rng root_;
};

}  // namespace

BernoulliScanStatistic::BernoulliScanStatistic(stats::ScanDirection direction,
                                               uint64_t total_n,
                                               uint64_t total_p)
    : BernoulliScanStatistic(
          direction, total_n, total_p,
          total_n == 0 ? 0.0
                       : static_cast<double>(total_p) /
                             static_cast<double>(total_n)) {}

BernoulliScanStatistic::BernoulliScanStatistic(stats::ScanDirection direction,
                                               uint64_t total_n,
                                               uint64_t total_p, double rho)
    : direction_(direction), total_n_(total_n), total_p_(total_p), rho_(rho) {}

std::string BernoulliScanStatistic::Name() const {
  return StrFormat("Bernoulli scan statistic (%s)",
                   stats::ScanDirectionToString(direction_));
}

std::string BernoulliScanStatistic::Fingerprint() const {
  return StrFormat("bernoulli dir=%s P=%llu",
                   stats::ScanDirectionToString(direction_),
                   static_cast<unsigned long long>(total_p_));
}

Status BernoulliScanStatistic::ValidateOutcomes(const uint8_t* outcomes,
                                                size_t n) const {
  if (n != total_n_) {
    return Status::InvalidArgument(
        StrFormat("outcome stream has %zu entries, statistic expects %llu",
                  n, static_cast<unsigned long long>(total_n_)));
  }
  for (size_t i = 0; i < n; ++i) {
    if (outcomes[i] > 1) {
      return Status::InvalidArgument(
          "Bernoulli outcomes must be 0/1; use the multinomial statistic for "
          "multi-class audits");
    }
  }
  return Status::OK();
}

Status BernoulliScanStatistic::ValidateForFamily(
    const RegionFamily& family) const {
  if (family.num_points() != total_n_) {
    return Status::InvalidArgument(StrFormat(
        "region family is bound to %zu points but the statistic's view has "
        "%llu",
        family.num_points(), static_cast<unsigned long long>(total_n_)));
  }
  if (rho_ < 0.0 || rho_ > 1.0) {
    return Status::InvalidArgument("rho must be in [0, 1]");
  }
  if (total_p_ > total_n_) {
    return Status::InvalidArgument("more positives than points");
  }
  return Status::OK();
}

ScanResult BernoulliScanStatistic::ScanObserved(const RegionFamily& family,
                                                const uint8_t* outcomes,
                                                size_t n,
                                                AuditScratch* scratch) const {
  // The scratch recycles the observed-world label buffer and the shared
  // k·log k table across pooled calls — identical arithmetic to the null
  // simulation, so observed-vs-null ties are exact (core/scan.h contract).
  scratch->observed_labels.AssignBytes(outcomes, n);
  return ScanAllRegions(family, scratch->observed_labels, direction_,
                        scratch->TableFor(n));
}

std::unique_ptr<StatisticSimulation> BernoulliScanStatistic::MakeSimulation(
    const RegionFamily& family, const MonteCarloOptions& options) const {
  return std::make_unique<BernoulliSimulation>(family, rho_, total_p_,
                                               direction_, options);
}

void BernoulliScanStatistic::FillFinding(const RegionFamily& family,
                                         const ScanResult& observed,
                                         size_t region,
                                         RegionFinding* finding) const {
  finding->n = family.PointCount(region);
  finding->p = observed.positives[region];
  finding->local_rate =
      finding->n == 0
          ? 0.0
          : static_cast<double>(finding->p) / static_cast<double>(finding->n);
  // log SUL = Λ + log L0max; L0max is constant across regions, so ranking by
  // Λ equals ranking by SUL (the paper's Eq. 1).
  finding->log_sul =
      finding->llr + stats::NullLogLikelihood(observed.total_p,
                                              observed.total_n);
}

}  // namespace sfa::core
