// The generic Monte Carlo world engine: runs any ScanStatistic's per-
// simulation context (StatisticSimulation) over options.num_worlds null
// worlds, organized around the statistic-agnostic cost levers:
//
//   allocation-free batches     worlds are processed in batches of B through
//                               the simulation's RunWorldBatch, whose
//                               per-world buffers live in statistic-owned
//                               thread-local arenas;
//   two-level parallelism       batches fan out on the shared thread pool
//                               (options.parallel), nested safely inside
//                               pipeline-level parallelism via the pool's
//                               helping WaitGroup.
//
// The statistic-specific levers — closed-form per-cell null sampling, the
// shared k·log k LLR table, sparse positive scatter — live inside the
// StatisticSimulation implementations (core/bernoulli_statistic.cc,
// core/multinomial_statistic.cc).
//
// Both execution strategies — the batched engine and the plain per-world
// reference — draw each world's randomness from the same per-world RNG
// substream (Rng::Split(world)) inside the simulation, so their
// NullDistributions are bit-identical for a fixed seed, independent of
// batch size, thread count, and parallel on/off (test_mc_engine.cc enforces
// this for Bernoulli across every bundled family and both null models;
// test_scan_statistic.cc for multinomial).
#ifndef SFA_CORE_MC_ENGINE_H_
#define SFA_CORE_MC_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/region_family.h"
#include "core/scan_statistic.h"
#include "core/significance.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {

/// How a Monte Carlo run ended. `worlds_completed` is always a CONTIGUOUS
/// prefix [0, worlds_completed) of the world index space: a stopped parallel
/// run may have finished later batches out of order, but those are discarded
/// so the surviving maxima are a pure function of (options, worlds_completed)
/// — the foundation of deterministic degraded responses (a partial p-value is
/// byte-reproducible given the completed-world count, regardless of thread
/// count or which wall-clock instant tripped the stop).
struct McRunOutcome {
  size_t worlds_completed = 0;
  bool complete = true;
  Status stop_cause;  ///< OK when complete; Cancelled/DeadlineExceeded/injected
  /// Adaptive sequential stop verdict (options.adaptive): a CI verdict when
  /// the run decided early BY DESIGN, kNone otherwise. An adaptive stop is a
  /// successful completion — `complete` stays true, stop_cause stays OK, and
  /// the maxima prefix [0, worlds_completed) IS the calibration (still
  /// byte-identical to a fixed-num_worlds run of that length).
  McStopReason stop_reason = McStopReason::kNone;

  bool early_stopped() const { return stop_reason != McStopReason::kNone; }
};

/// Runs `simulation` over options.num_worlds null worlds and returns their
/// max statistics in world order (unsorted). Inputs are assumed validated by
/// SimulateNull.
///
/// When `outcome` is non-null, the engine polls options.cancel /
/// options.deadline (and the `mc_engine.batch` failpoint) at every batch
/// boundary and may stop early: the returned vector is then truncated to the
/// completed contiguous world prefix and *outcome says why. With a null
/// `outcome` the stop controls are ignored and the run always completes.
///
/// Adaptive sequential stopping (options.adaptive.enabled): worlds run in
/// serial chunks of adaptive.check_every (each chunk batched/parallel per
/// the execution options); after each chunk a Wilson CI on the exceedance
/// probability of adaptive.observed decides whether the p-value-vs-alpha
/// verdict is settled, and the run stops at the first settled boundary
/// (outcome->stop_reason records which side). The stop point depends ONLY on
/// the decision-relevant options — worlds draw from per-world substreams and
/// chunk boundaries are fixed by check_every — never on batch size, thread
/// count, or parallel on/off, so adaptive runs keep the engine's determinism
/// contract. Adaptive runs always report through an outcome (a local one is
/// used if the caller passed none, making them stoppable by construction).
std::vector<double> RunMonteCarloWorlds(const StatisticSimulation& simulation,
                                        const MonteCarloOptions& options,
                                        McRunOutcome* outcome);

std::vector<double> RunMonteCarloWorlds(const StatisticSimulation& simulation,
                                        const MonteCarloOptions& options);

/// Bernoulli convenience wrapper (the pre-statistic-layer signature, kept
/// for the ablation harnesses and engine tests): simulates the binary
/// statistic at an explicit null rate `rho`.
std::vector<double> RunMonteCarloWorlds(const RegionFamily& family, double rho,
                                        uint64_t total_positives,
                                        stats::ScanDirection direction,
                                        const MonteCarloOptions& options);

}  // namespace sfa::core

#endif  // SFA_CORE_MC_ENGINE_H_
