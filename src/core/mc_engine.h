// The Monte Carlo world engine: simulates the null distribution of the max
// scan statistic for a region family (paper §3), organized around three
// cost levers the naive per-world loop leaves on the table:
//
//   closed-form null sampling   partition-structured families under the
//                               Bernoulli null never label points — each
//                               cell's positive count is an independent
//                               Binomial(n_c, ρ) draw, O(cells) per world
//                               instead of O(N);
//   log-table LLR               every count is an integer <= N, so Λ(R) is
//                               evaluated from a shared k·log k table
//                               (stats::LogLikelihoodTable) with zero
//                               std::log calls per region;
//   allocation-free batches     worlds are processed in batches of B through
//                               RegionFamily::CountPositivesBatch, with all
//                               per-world buffers (labels, counts, shuffle
//                               scratch) pooled in thread-local arenas;
//   sparse positive scatter     overlapping families (squares, kNN circles)
//                               default to the annulus CSR backend
//                               (core/annulus_index.h): each batched world is
//                               counted by scattering its positive point ids —
//                               Labels' sparse view — into per-center annulus
//                               histograms, O(positive entries) per world with
//                               no dense label bits; batches parallelize the
//                               scatter across worker threads like any other
//                               counting backend.
//
// Both execution strategies — the batched engine and the plain per-world
// reference — draw each world's randomness from the same per-world RNG
// substream (Rng::Split(world)) and evaluate Λ through the same table, so
// their NullDistributions are bit-identical for a fixed seed, independent of
// batch size, thread count, and parallel on/off (test_mc_engine.cc enforces
// this across every bundled family and both null models).
#ifndef SFA_CORE_MC_ENGINE_H_
#define SFA_CORE_MC_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/region_family.h"
#include "core/significance.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {

/// Simulates options.num_worlds null worlds and returns their max statistics
/// in world order (unsorted). Inputs are assumed validated by SimulateNull.
std::vector<double> RunMonteCarloWorlds(const RegionFamily& family, double rho,
                                        uint64_t total_positives,
                                        stats::ScanDirection direction,
                                        const MonteCarloOptions& options);

}  // namespace sfa::core

#endif  // SFA_CORE_MC_ENGINE_H_
