// The pluggable scan-statistic layer: one abstraction behind which every
// outcome model (Bernoulli today, multinomial, and future continuous or
// autocorrelation-aware statistics) plugs into the SAME engine, cache, and
// serving stack.
//
// The paper's framework is statistic-agnostic: scan a region family for
// τ = max_R Λ(R), calibrate τ's null distribution by Monte Carlo, rank the
// evidence. What varies per outcome model is exactly four things, and they
// are the interface:
//
//   observed scan      per-region Λ of the observed world (ScanObserved);
//   null simulation    a per-simulation context that draws alternate worlds
//                      and evaluates their max Λ (MakeSimulation), run by the
//                      generic batched Monte Carlo engine (core/mc_engine.h);
//   evidence fields    how a significant region is described to humans
//                      (FillFinding);
//   identity           a stable fingerprint string embedded in calibration
//                      keys (Fingerprint), so calibrations of different
//                      statistics can never collide in the cache or the
//                      persistent store.
//
// Implementations must uphold the engine's determinism contract: for a fixed
// seed, a simulation's maxima are bit-identical across engine strategy
// (batched/reference), batch size, thread count, and parallel on/off. They
// achieve this the same way the Bernoulli statistic does — per-world RNG
// substreams (Rng::Split(world)) and a shared k·log k log-likelihood table
// so observed and null worlds with identical counts produce bit-identical
// statistics (exact tie semantics for the rank p-value).
#ifndef SFA_CORE_SCAN_STATISTIC_H_
#define SFA_CORE_SCAN_STATISTIC_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/labels.h"
#include "core/region_family.h"
#include "core/scan.h"
#include "core/significance.h"
#include "geo/rect.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {

/// The bundled outcome models. Every kind shares the full performance and
/// serving stack (batched MC engine, calibration cache/store, streaming
/// Submit) — adding a kind means implementing ScanStatistic, nothing else.
enum class StatisticKind : uint8_t {
  kBernoulli = 0,   ///< binary outcome rate (the paper's test)
  kMultinomial = 1, ///< full K-class outcome distribution (Jung et al. 2010)
};

const char* StatisticKindToString(StatisticKind kind);

/// One region offered as evidence of spatial unfairness. Bernoulli audits
/// fill the rate fields (p, local_rate, log_sul); multinomial audits fill
/// class_counts and leave the binary-only fields zero.
struct RegionFinding {
  size_t region_index = 0;
  geo::Rect rect;
  std::string label;
  uint32_t group = 0;
  uint64_t n = 0;          ///< individuals inside
  uint64_t p = 0;          ///< positives inside (Bernoulli)
  double local_rate = 0.0; ///< ρ(R) = p/n (Bernoulli)
  double llr = 0.0;        ///< Λ(R); ranking by Λ == ranking by SUL
  double log_sul = 0.0;    ///< log of the paper's Eq. 1 (statistic's analog)
  bool significant = false;
  /// True when `significant` was decided against a tail-advisory threshold
  /// (Gumbel quantile) because the empirical critical value was unresolvable
  /// at this world budget — treat as indicative, not calibrated.
  bool advisory = false;
  /// Per-class counts inside the region (multinomial; empty for Bernoulli).
  std::vector<uint64_t> class_counts;
};

/// Reusable per-thread buffers for pooled audit execution: the audit
/// pipeline keeps one AuditScratch per worker so the steady state of a
/// request stream allocates no observed-world storage and rebuilds the
/// O(N)-std::log likelihood table only when the view size changes. Plain
/// Audit/AuditView calls allocate transparently when no scratch is supplied.
/// Statistics share the table and label buffers; the byte and count buffers
/// are generic scratch any statistic may resize and use (the multinomial
/// statistic keeps its indicator bytes and per-class count rows here so a
/// pooled worker's steady state stays allocation-free).
struct AuditScratch {
  Labels observed_labels;
  std::optional<stats::LogLikelihoodTable> table;
  std::vector<uint8_t> bytes;
  std::vector<uint64_t> counts;
  std::vector<uint64_t> region_counts;

  /// The k·log k table for views of `total_n` points, rebuilt on size change.
  const stats::LogLikelihoodTable& TableFor(uint64_t total_n) {
    if (!table.has_value() || table->max_count() != total_n) {
      table.emplace(total_n);
    }
    return *table;
  }
};

/// Per-simulation immutable context built once by a statistic (tables,
/// per-region point counts, closed-form cell samplers, the RNG root) and
/// shared read-only across worker threads by the generic Monte Carlo engine.
/// Mutable per-world buffers live in implementation-owned thread-local
/// arenas, so steady-state batches allocate nothing.
class StatisticSimulation {
 public:
  virtual ~StatisticSimulation() = default;

  /// Max statistic of null world `w` — the reference strategy: fresh buffers,
  /// scalar counting. The semantic baseline RunWorldBatch must match
  /// bit-for-bit.
  virtual double RunWorldReference(size_t w) const = 0;

  /// Max statistics of worlds [w_lo, w_hi) into out[w_lo..w_hi), through
  /// pooled thread-local buffers and the family's batched counting paths.
  virtual void RunWorldBatch(size_t w_lo, size_t w_hi, double* out) const = 0;
};

/// One outcome model bound to one audit view's totals. Instances are
/// immutable and cheap; the Auditor builds one per audit (or the caller
/// injects one). The view totals are constructor state — not method
/// parameters — because they are part of the calibration identity: two
/// audits may share a null calibration iff family fingerprint, N, this
/// statistic's Fingerprint(), and the draw-relevant Monte Carlo options all
/// agree (see core/calibration_cache.h).
class ScanStatistic {
 public:
  virtual ~ScanStatistic() = default;

  virtual StatisticKind kind() const = 0;

  /// Human-readable one-liner for reports.
  virtual std::string Name() const = 0;

  /// Stable identity string embedded in calibration keys (hashed AND carried
  /// in the debug rendering). Must capture everything statistic-specific
  /// that shapes the observed Λ or the null draws: the kind, its
  /// configuration (direction, class count), and the view totals beyond N
  /// (P for Bernoulli, per-class totals for multinomial). Changing a
  /// statistic's arithmetic or RNG stream MUST change this string.
  virtual std::string Fingerprint() const = 0;

  /// N: number of individuals in the view this statistic was built from.
  virtual uint64_t total_n() const = 0;

  /// Per-point outcome values this statistic can scan (0/1 for Bernoulli,
  /// class ids < K for multinomial). `n` must equal total_n().
  virtual Status ValidateOutcomes(const uint8_t* outcomes, size_t n) const = 0;

  /// Checks this statistic can calibrate against `family` (point counts
  /// match, totals consistent). Called by SimulateNull before simulating.
  virtual Status ValidateForFamily(const RegionFamily& family) const = 0;

  /// Full per-region scan of the observed world: Λ per region, the counts
  /// evidence needs, and τ = max Λ. Arithmetic contract: evaluates Λ through
  /// the same shared table as the null simulation, so observed-vs-null ties
  /// are exact. `scratch` recycles buffers across pooled calls.
  virtual ScanResult ScanObserved(const RegionFamily& family,
                                  const uint8_t* outcomes, size_t n,
                                  AuditScratch* scratch) const = 0;

  /// The per-simulation context the generic Monte Carlo engine runs
  /// (core/mc_engine.h). Inputs are assumed validated via ValidateForFamily.
  virtual std::unique_ptr<StatisticSimulation> MakeSimulation(
      const RegionFamily& family, const MonteCarloOptions& options) const = 0;

  /// Fills the statistic-specific fields of one evidence finding from the
  /// observed scan (n/p/local_rate/log_sul for Bernoulli; class_counts for
  /// multinomial). Generic fields (region_index, rect, label, group, llr,
  /// significant) are the caller's job.
  virtual void FillFinding(const RegionFamily& family,
                           const ScanResult& observed, size_t region,
                           RegionFinding* finding) const = 0;

  /// Global empirical class proportions for the result (multinomial); empty
  /// for statistics without a class decomposition.
  virtual std::vector<double> ClassDistribution() const { return {}; }
};

/// Partial progress of a stopped calibration, reported through the error
/// path of SimulateNull so an incomplete null distribution is never mistaken
/// for (or cached as) a complete one. `maxima` holds the contiguous
/// completed-world prefix in world order (see core/mc_engine.h for why that
/// prefix is deterministic given its length).
struct PartialCalibration {
  size_t worlds_completed = 0;
  std::vector<double> maxima;
};

/// Simulates the null distribution of the max statistic for `statistic` over
/// `family` — the statistic-generic entry point of the calibration path.
///
/// Cooperative stop: when options.cancel / options.deadline (or an armed
/// `mc_engine.batch` failpoint) stop the run early, the call FAILS with the
/// stop cause (Cancelled / DeadlineExceeded / the injected status) so
/// read-through caches drop it; callers that can serve degraded results pass
/// `partial` to receive the completed-world prefix alongside that error.
Result<NullDistribution> SimulateNull(const ScanStatistic& statistic,
                                      const RegionFamily& family,
                                      const MonteCarloOptions& options,
                                      PartialCalibration* partial = nullptr);

}  // namespace sfa::core

#endif  // SFA_CORE_SCAN_STATISTIC_H_
