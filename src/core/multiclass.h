// Multi-class spatial fairness audit — the multinomial-scan extension of the
// framework. Where the binary audit asks whether the rate of one outcome is
// independent of location, the multi-class audit asks whether the full
// outcome DISTRIBUTION (e.g. a classifier's predicted class mix, or a
// recommender's category mix) is. Useful beyond binary classification: the
// paper's related work on mixture areas (Xie et al. 2020; Skoutas et al.
// 2021) targets exactly such categorical spatial patterns.
//
// AuditMulticlassGrid is a thin grid-shaped adapter over the unified
// Auditor path with StatisticKind::kMultinomial
// (core/multinomial_statistic.h): the same audit runs against ANY
// RegionFamily — and through the AuditPipeline with calibration
// caching/persistence and streaming Submit() — by setting
// AuditOptions::statistic/num_classes on an ordinary request; this entry
// point survives for grid-only callers and one-shot scripts.
#ifndef SFA_CORE_MULTICLASS_H_
#define SFA_CORE_MULTICLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/audit.h"
#include "core/significance.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace sfa::core {

struct MulticlassAuditOptions {
  double alpha = 0.005;
  uint32_t grid_x = 20;
  uint32_t grid_y = 20;
  MonteCarloOptions monte_carlo;
};

struct MulticlassFinding {
  uint32_t cell = 0;
  geo::Rect rect;
  uint64_t n = 0;
  std::vector<uint64_t> class_counts;  ///< per-class counts inside the cell
  double llr = 0.0;
};

struct MulticlassAuditResult {
  bool spatially_fair = true;
  double p_value = 1.0;
  double tau = 0.0;
  double critical_value = 0.0;
  double alpha = 0.0;
  uint64_t total_n = 0;
  std::vector<double> class_distribution;  ///< global empirical proportions
  std::vector<MulticlassFinding> findings;  ///< significant cells, by Λ desc
};

/// Audits whether the class distribution of `classes` (values in
/// [0, num_classes)) is independent of location, over a grid_x × grid_y
/// grid. `locations` and `classes` must be parallel and non-empty;
/// num_classes >= 2. Equivalent to a multinomial AuditView over a
/// GridPartitionFamily (a test pins the equivalence).
Result<MulticlassAuditResult> AuditMulticlassGrid(
    const std::vector<geo::Point>& locations, const std::vector<uint8_t>& classes,
    uint32_t num_classes, const MulticlassAuditOptions& options);

/// The adapter's conversion, exposed so pipeline callers auditing with
/// StatisticKind::kMultinomial can render their AuditResult in the
/// grid-audit shape.
MulticlassAuditResult ToMulticlassResult(const AuditResult& result);

}  // namespace sfa::core

#endif  // SFA_CORE_MULTICLASS_H_
