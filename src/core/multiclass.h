// Multi-class spatial fairness audit — the multinomial-scan extension of the
// framework. Where the binary audit asks whether the rate of one outcome is
// independent of location, the multi-class audit asks whether the full
// outcome DISTRIBUTION (e.g. a classifier's predicted class mix, or a
// recommender's category mix) is. Useful beyond binary classification: the
// paper's related work on mixture areas (Xie et al. 2020; Skoutas et al.
// 2021) targets exactly such categorical spatial patterns.
//
// The scan runs over the cells of a regular grid. The null draws every
// individual's class i.i.d. from the global empirical class distribution;
// significance is Monte Carlo, as in the binary audit.
#ifndef SFA_CORE_MULTICLASS_H_
#define SFA_CORE_MULTICLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/significance.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace sfa::core {

struct MulticlassAuditOptions {
  double alpha = 0.005;
  uint32_t grid_x = 20;
  uint32_t grid_y = 20;
  MonteCarloOptions monte_carlo;
};

struct MulticlassFinding {
  uint32_t cell = 0;
  geo::Rect rect;
  uint64_t n = 0;
  std::vector<uint64_t> class_counts;  ///< per-class counts inside the cell
  double llr = 0.0;
};

struct MulticlassAuditResult {
  bool spatially_fair = true;
  double p_value = 1.0;
  double tau = 0.0;
  double critical_value = 0.0;
  double alpha = 0.0;
  uint64_t total_n = 0;
  std::vector<double> class_distribution;  ///< global empirical proportions
  std::vector<MulticlassFinding> findings;  ///< significant cells, by Λ desc
};

/// Audits whether the class distribution of `classes` (values in
/// [0, num_classes)) is independent of location. `locations` and `classes`
/// must be parallel and non-empty; num_classes >= 2.
Result<MulticlassAuditResult> AuditMulticlassGrid(
    const std::vector<geo::Point>& locations, const std::vector<uint8_t>& classes,
    uint32_t num_classes, const MulticlassAuditOptions& options);

}  // namespace sfa::core

#endif  // SFA_CORE_MULTICLASS_H_
