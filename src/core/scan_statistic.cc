#include "core/scan_statistic.h"

#include "common/macros.h"
#include "core/mc_engine.h"

namespace sfa::core {

const char* StatisticKindToString(StatisticKind kind) {
  switch (kind) {
    case StatisticKind::kBernoulli:
      return "bernoulli";
    case StatisticKind::kMultinomial:
      return "multinomial";
  }
  return "?";
}

Result<NullDistribution> SimulateNull(const ScanStatistic& statistic,
                                      const RegionFamily& family,
                                      const MonteCarloOptions& options) {
  if (options.num_worlds == 0) {
    return Status::InvalidArgument("Monte Carlo needs at least one world");
  }
  SFA_RETURN_NOT_OK(statistic.ValidateForFamily(family));
  const std::unique_ptr<StatisticSimulation> simulation =
      statistic.MakeSimulation(family, options);
  return NullDistribution(RunMonteCarloWorlds(*simulation, options));
}

}  // namespace sfa::core
