#include "core/scan_statistic.h"

#include "common/macros.h"
#include "core/mc_engine.h"

namespace sfa::core {

const char* StatisticKindToString(StatisticKind kind) {
  switch (kind) {
    case StatisticKind::kBernoulli:
      return "bernoulli";
    case StatisticKind::kMultinomial:
      return "multinomial";
  }
  return "?";
}

Result<NullDistribution> SimulateNull(const ScanStatistic& statistic,
                                      const RegionFamily& family,
                                      const MonteCarloOptions& options,
                                      PartialCalibration* partial) {
  SFA_RETURN_NOT_OK(ValidateMonteCarloOptions(options));
  SFA_RETURN_NOT_OK(statistic.ValidateForFamily(family));
  const std::unique_ptr<StatisticSimulation> simulation =
      statistic.MakeSimulation(family, options);
  McRunOutcome outcome;
  std::vector<double> max_llrs =
      RunMonteCarloWorlds(*simulation, options, &outcome);
  if (!outcome.complete) {
    // Surface the stop as the call's status — an incomplete calibration must
    // never flow into the cache as a value. The completed prefix rides the
    // side channel for callers serving degraded responses.
    if (partial != nullptr) {
      partial->worlds_completed = outcome.worlds_completed;
      partial->maxima = std::move(max_llrs);
    }
    return outcome.stop_cause;
  }
  if (outcome.early_stopped()) {
    // Adaptive CI stop: a successful, shorter calibration. Carry the request
    // size and verdict so caches/stores/reports can tell it from a full run.
    return NullDistribution(std::move(max_llrs), options.num_worlds,
                            outcome.stop_reason);
  }
  return NullDistribution(std::move(max_llrs));
}

}  // namespace sfa::core
