#include "core/knn_circle_family.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/membership_batch.h"
#include "spatial/kdtree.h"

namespace sfa::core {

std::vector<double> KnnCircleOptions::DefaultPopulationFractions() {
  return {0.005, 0.01, 0.02, 0.03, 0.05, 0.075, 0.10};
}

KnnCircleFamily::KnnCircleFamily(const std::vector<geo::Point>& points,
                                 std::vector<geo::Point> centers,
                                 std::vector<size_t> ladder,
                                 size_t num_requested_fractions,
                                 CountingBackend backend)
    : centers_(std::move(centers)),
      ladder_(std::move(ladder)),
      num_requested_fractions_(num_requested_fractions),
      backend_(backend),
      num_points_(points.size()) {
  const size_t num_centers = centers_.size();
  const size_t num_rungs = ladder_.size();
  const size_t total = num_centers * num_rungs;
  point_counts_.assign(total, 0);
  radii_.assign(total, 0.0);

  const spatial::KdTree tree(points);
  const size_t max_k = ladder_.back();
  // One kNN query at the largest k serves every rung: position i of the
  // nearest list has annulus rank = index of the first ladder value > i
  // (prefixes of the list ARE the rungs). Every rung is strictly larger than
  // its predecessor (ladder k values are deduped), so no annulus is empty.
  std::vector<std::vector<AnnulusEntry>> per_center(num_centers);
  DefaultThreadPool().ParallelFor(num_centers, [&](size_t c) {
    const std::vector<uint32_t> nearest = tree.KNearest(centers_[c], max_k);
    std::vector<AnnulusEntry>& out = per_center[c];
    out.reserve(max_k);
    for (size_t i = 0; i < max_k; ++i) {
      const size_t rank = static_cast<size_t>(
          std::upper_bound(ladder_.begin(), ladder_.end(), i) -
          ladder_.begin());
      out.push_back({nearest[i], static_cast<uint32_t>(c),
                     static_cast<uint32_t>(rank)});
    }
    for (size_t rung = 0; rung < num_rungs; ++rung) {
      const size_t r = c * num_rungs + rung;
      const size_t k = ladder_[rung];
      point_counts_[r] = k;
      radii_[r] = centers_[c].DistanceTo(points[nearest[k - 1]]);
    }
  });
  std::vector<AnnulusEntry> entries;
  entries.reserve(num_centers * max_k);
  for (std::vector<AnnulusEntry>& chunk : per_center) {
    entries.insert(entries.end(), chunk.begin(), chunk.end());
    chunk.clear();
    chunk.shrink_to_fit();
  }

  if (backend_ == CountingBackend::kSparseAnnulus) {
    annulus_ = AnnulusIndex(num_points_, num_centers, num_rungs, entries);
    return;
  }
  memberships_.assign(total, spatial::BitVector());
  DefaultThreadPool().ParallelFor(num_centers, [&](size_t c) {
    spatial::BitVector cumulative(num_points_);
    for (size_t rung = 0; rung < num_rungs; ++rung) {
      for (size_t i = c * max_k; i < (c + 1) * max_k; ++i) {
        if (entries[i].rank == rung) cumulative.Set(entries[i].point);
      }
      memberships_[c * num_rungs + rung] = cumulative;
    }
  });
}

Result<std::unique_ptr<KnnCircleFamily>> KnnCircleFamily::Create(
    const std::vector<geo::Point>& points, const KnnCircleOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("kNN circle family needs points");
  }
  if (options.centers.empty()) {
    return Status::InvalidArgument("kNN circle family needs centers");
  }
  if (options.population_fractions.empty()) {
    return Status::InvalidArgument("kNN circle family needs a population ladder");
  }
  std::vector<size_t> ladder;
  for (double fraction : options.population_fractions) {
    if (!(fraction > 0.0) || fraction > 1.0) {
      return Status::InvalidArgument(
          StrFormat("population fraction %.4f outside (0, 1]", fraction));
    }
    const auto k = static_cast<size_t>(
        std::ceil(fraction * static_cast<double>(points.size())));
    ladder.push_back(std::clamp<size_t>(k, 1, points.size()));
  }
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return std::unique_ptr<KnnCircleFamily>(new KnnCircleFamily(
      points, options.centers, std::move(ladder),
      options.population_fractions.size(), options.backend));
}

RegionDescriptor KnnCircleFamily::Describe(size_t r) const {
  SFA_DCHECK(r < num_regions());
  const size_t c = CenterOfRegion(r);
  RegionDescriptor desc;
  // The enclosing square of the circle, for overlap tests and rendering.
  desc.rect = geo::Rect::CenteredSquare(centers_[c], 2.0 * radii_[r]);
  desc.label =
      StrFormat("knn-circle(center %zu at (%.3f, %.3f), k=%llu, radius %.3f)", c,
                centers_[c].x, centers_[c].y,
                static_cast<unsigned long long>(point_counts_[r]), radii_[r]);
  desc.group = static_cast<uint32_t>(c);
  return desc;
}

void KnnCircleFamily::CountPositives(const Labels& labels,
                                     std::vector<uint64_t>* out) const {
  SFA_CHECK(out != nullptr);
  SFA_CHECK_MSG(labels.size() == num_points_,
                "labels " << labels.size() << " != points " << num_points_);
  out->resize(num_regions());
  if (backend_ == CountingBackend::kSparseAnnulus) {
    CountPositivesWithAnnulus(annulus_, labels, out->data());
    return;
  }
  for (size_t r = 0; r < memberships_.size(); ++r) {
    (*out)[r] = spatial::BitVector::AndPopcount(memberships_[r], labels.bits());
  }
}

void KnnCircleFamily::CountPositivesBatch(const Labels* const* batch,
                                          size_t num_worlds,
                                          uint64_t* out) const {
  if (backend_ == CountingBackend::kSparseAnnulus) {
    CountPositivesBatchWithAnnulus(annulus_, num_points_, batch, num_worlds,
                                   out);
    return;
  }
  CountPositivesBatchWithMemberships(memberships_, num_points_, batch, num_worlds,
                                     out);
}

void KnnCircleFamily::CountClassesBatch(const uint8_t* const* class_worlds,
                                        size_t num_worlds, uint32_t num_classes,
                                        uint64_t* out) const {
  if (backend_ == CountingBackend::kSparseAnnulus) {
    CountClassesBatchWithAnnulus(annulus_, class_worlds, num_worlds,
                                 num_classes, out);
    return;
  }
  CountClassesBatchWithMemberships(memberships_, num_points_, class_worlds,
                                   num_worlds, num_classes, out);
}

size_t KnnCircleFamily::MembershipBytes() const {
  return backend_ == CountingBackend::kSparseAnnulus
             ? annulus_.MemoryBytes()
             : DenseMembershipBytes(memberships_);
}

std::string KnnCircleFamily::Name() const {
  std::string dedup =
      ladder_.size() == num_requested_fractions_
          ? ""
          : StrFormat(", deduped from %zu fractions", num_requested_fractions_);
  return StrFormat(
      "%zu kNN circles (%zu centers x %zu population rungs%s) over %zu points "
      "[%s]",
      num_regions(), centers_.size(), ladder_.size(), dedup.c_str(), num_points_,
      CountingBackendToString(backend_));
}

}  // namespace sfa::core
