// Export of audit artifacts: evidence regions to GeoJSON (for any mapping
// tool — QGIS, kepler.gl, geojson.io) and to CSV (for spreadsheets and
// downstream analysis). Locations are assumed to be (lon, lat) degrees when
// exporting GeoJSON, matching the library's geographic datasets.
#ifndef SFA_CORE_EXPORT_H_
#define SFA_CORE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/audit.h"
#include "data/dataset.h"

namespace sfa::core {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
/// Shared by the GeoJSON exporters and the pipeline run manifest.
std::string JsonEscape(const std::string& s);

/// Serializes findings as a GeoJSON FeatureCollection of rectangle polygons
/// with properties {rank, n, p, local_rate, llr, label}.
std::string FindingsToGeoJson(const std::vector<RegionFinding>& findings);

/// Writes FindingsToGeoJson output to `path`.
Status WriteFindingsGeoJson(const std::vector<RegionFinding>& findings,
                            const std::string& path);

/// Serializes a dataset sample as a GeoJSON FeatureCollection of points with
/// property {outcome}. At most `max_points` points are emitted (uniformly
/// strided) to keep files manageable for map viewers.
std::string DatasetToGeoJson(const data::OutcomeDataset& dataset,
                             size_t max_points = 10000);

/// Writes findings as CSV with header
/// rank,min_lon,min_lat,max_lon,max_lat,n,p,local_rate,llr,label.
Status WriteFindingsCsv(const std::vector<RegionFinding>& findings,
                        const std::string& path);

}  // namespace sfa::core

#endif  // SFA_CORE_EXPORT_H_
