// Classical spatial-autocorrelation diagnostics for binary outcomes:
// join-count statistics and a binary Moran's I over a k-nearest-neighbor
// graph.
//
// These are the tools a spatial statistician would reach for FIRST when
// asked "do outcomes depend on location?" — and an instructive contrast to
// the paper's framework: they detect *global* spatial autocorrelation with
// one number but cannot localize it (no "where is it unfair?"), and their
// null calibration assumes exchangeability rather than an explicit outcome
// model. bench_ablation_autocorrelation compares them with the scan audit.
#ifndef SFA_STATS_JOIN_COUNT_H_
#define SFA_STATS_JOIN_COUNT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geo/point.h"

namespace sfa::stats {

/// Symmetrized k-nearest-neighbor adjacency over 2-d points: edge (i, j)
/// exists when j is among i's k nearest or vice versa. Self-edges excluded.
struct KnnGraph {
  /// CSR adjacency: neighbors of i are neighbor_ids[begin[i] .. begin[i+1]).
  std::vector<uint32_t> begin;
  std::vector<uint32_t> neighbor_ids;

  size_t num_nodes() const { return begin.empty() ? 0 : begin.size() - 1; }
  size_t num_edges() const { return neighbor_ids.size() / 2; }
};

/// Builds the symmetrized kNN graph (k >= 1; needs at least k+1 points).
Result<KnnGraph> BuildKnnGraph(const std::vector<geo::Point>& points, uint32_t k);

/// Join counts over a graph for binary labels: BB (both ends 1),
/// WW (both 0), BW (mixed).
struct JoinCounts {
  uint64_t bb = 0;
  uint64_t ww = 0;
  uint64_t bw = 0;
  uint64_t total() const { return bb + ww + bw; }
};

JoinCounts CountJoins(const KnnGraph& graph, const std::vector<uint8_t>& labels);

/// Binary Moran's I over the graph (equal weights): I in [-1, 1]-ish, ~0
/// under independence, positive when like outcomes cluster.
double BinaryMoransI(const KnnGraph& graph, const std::vector<uint8_t>& labels);

/// Permutation test for spatial autocorrelation: redraws labels as
/// independent Bernoulli(rho) `num_worlds` times and returns the fraction of
/// worlds whose |Moran's I| reaches the observed value (two-sided Monte
/// Carlo p-value, observed world included).
Result<double> MoransIPValue(const KnnGraph& graph,
                             const std::vector<uint8_t>& labels,
                             uint32_t num_worlds, uint64_t seed);

}  // namespace sfa::stats

#endif  // SFA_STATS_JOIN_COUNT_H_
