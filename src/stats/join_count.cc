#include "stats/join_count.h"

#include <algorithm>
#include <cmath>


#include "common/macros.h"
#include "spatial/kdtree.h"

namespace sfa::stats {

Result<KnnGraph> BuildKnnGraph(const std::vector<geo::Point>& points, uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (points.size() <= k) {
    return Status::InvalidArgument("need more than k points");
  }
  const spatial::KdTree tree(points);

  // Collect each node's k nearest by expanding a square window around the
  // point until it holds more than k candidates, then keeping the k nearest
  // by distance. The initial window uses an average-spacing heuristic so the
  // expected number of expansions is O(1) for roughly uniform densities.
  const geo::Rect bbox = geo::Rect::BoundingBox(points);
  const double initial_half = std::max(bbox.width(), bbox.height()) /
                              std::sqrt(static_cast<double>(points.size())) * 1.5;
  std::vector<std::vector<uint32_t>> neighbors(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    double half = std::max(initial_half, 1e-9);
    std::vector<uint32_t> candidates;
    for (int expand = 0; expand < 40; ++expand) {
      candidates = tree.ReportRect(geo::Rect(points[i].x - half, points[i].y - half,
                                             points[i].x + half,
                                             points[i].y + half));
      if (candidates.size() > k) break;
      half *= 2.0;
    }
    SFA_CHECK_MSG(candidates.size() > k, "kNN window expansion failed");
    std::sort(candidates.begin(), candidates.end(),
              [&](uint32_t a, uint32_t b) {
                return points[i].DistanceSquaredTo(points[a]) <
                       points[i].DistanceSquaredTo(points[b]);
              });
    for (uint32_t c : candidates) {
      if (c == i) continue;
      neighbors[i].push_back(c);
      if (neighbors[i].size() == k) break;
    }
  }

  // Symmetrize and deduplicate.
  std::vector<std::vector<uint32_t>> sym(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    for (uint32_t j : neighbors[i]) {
      sym[i].push_back(j);
      sym[j].push_back(i);
    }
  }
  KnnGraph graph;
  graph.begin.resize(points.size() + 1, 0);
  for (uint32_t i = 0; i < points.size(); ++i) {
    std::sort(sym[i].begin(), sym[i].end());
    sym[i].erase(std::unique(sym[i].begin(), sym[i].end()), sym[i].end());
    graph.begin[i + 1] = graph.begin[i] + static_cast<uint32_t>(sym[i].size());
  }
  graph.neighbor_ids.reserve(graph.begin.back());
  for (const auto& adj : sym) {
    graph.neighbor_ids.insert(graph.neighbor_ids.end(), adj.begin(), adj.end());
  }
  return graph;
}

JoinCounts CountJoins(const KnnGraph& graph, const std::vector<uint8_t>& labels) {
  SFA_CHECK(labels.size() == graph.num_nodes());
  JoinCounts counts;
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    for (uint32_t e = graph.begin[i]; e < graph.begin[i + 1]; ++e) {
      const uint32_t j = graph.neighbor_ids[e];
      if (j <= i) continue;  // each undirected edge once
      const int sum = labels[i] + labels[j];
      if (sum == 2) {
        ++counts.bb;
      } else if (sum == 0) {
        ++counts.ww;
      } else {
        ++counts.bw;
      }
    }
  }
  return counts;
}

double BinaryMoransI(const KnnGraph& graph, const std::vector<uint8_t>& labels) {
  SFA_CHECK(labels.size() == graph.num_nodes());
  const auto n = static_cast<double>(labels.size());
  double mean = 0.0;
  for (uint8_t label : labels) mean += label;
  mean /= n;
  double denominator = 0.0;
  for (uint8_t label : labels) {
    const double d = label - mean;
    denominator += d * d;
  }
  if (denominator == 0.0) return 0.0;  // constant labels
  double numerator = 0.0;
  double weight_sum = 0.0;
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    for (uint32_t e = graph.begin[i]; e < graph.begin[i + 1]; ++e) {
      const uint32_t j = graph.neighbor_ids[e];
      numerator += (labels[i] - mean) * (labels[j] - mean);
      weight_sum += 1.0;
    }
  }
  if (weight_sum == 0.0) return 0.0;
  return (n / weight_sum) * (numerator / denominator);
}

Result<double> MoransIPValue(const KnnGraph& graph,
                             const std::vector<uint8_t>& labels,
                             uint32_t num_worlds, uint64_t seed) {
  if (num_worlds == 0) return Status::InvalidArgument("need >= 1 world");
  if (labels.size() != graph.num_nodes()) {
    return Status::InvalidArgument("labels do not match the graph");
  }
  double rho = 0.0;
  for (uint8_t label : labels) rho += label;
  rho /= static_cast<double>(labels.size());

  const double observed = std::fabs(BinaryMoransI(graph, labels));
  Rng rng(seed);
  uint32_t at_least = 0;
  std::vector<uint8_t> fake(labels.size());
  for (uint32_t w = 0; w < num_worlds; ++w) {
    for (auto& label : fake) label = rng.Bernoulli(rho) ? 1 : 0;
    if (std::fabs(BinaryMoransI(graph, fake)) >= observed) ++at_least;
  }
  return static_cast<double>(1 + at_least) / static_cast<double>(num_worlds + 1);
}

}  // namespace sfa::stats
