#include "stats/bernoulli_scan.h"

#include <cmath>

#include "common/macros.h"

namespace sfa::stats {

const char* ScanDirectionToString(ScanDirection d) {
  switch (d) {
    case ScanDirection::kTwoSided:
      return "two-sided";
    case ScanDirection::kHigh:
      return "high (green)";
    case ScanDirection::kLow:
      return "low (red)";
  }
  return "?";
}

double MaxBernoulliLogLikelihood(uint64_t k, uint64_t m) {
  SFA_DCHECK(k <= m);
  if (m == 0) return 0.0;
  const auto kd = static_cast<double>(k);
  const auto md = static_cast<double>(m);
  double ll = 0.0;
  if (k > 0) ll += kd * std::log(kd / md);
  if (k < m) ll += (md - kd) * std::log((md - kd) / md);
  return ll;
}

double NullLogLikelihood(uint64_t total_p, uint64_t total_n) {
  return MaxBernoulliLogLikelihood(total_p, total_n);
}

double BernoulliLogLikelihoodRatio(const ScanCounts& c, ScanDirection direction) {
  SFA_DCHECK(c.IsValid());
  const uint64_t n_out = c.total_n - c.n;
  const uint64_t p_out = c.total_p - c.p;
  // Degenerate regions (empty or everything) cannot separate inside from
  // outside; their alternative collapses to the null.
  if (c.n == 0 || n_out == 0) return 0.0;

  const double rate_in = static_cast<double>(c.p) / static_cast<double>(c.n);
  const double rate_out = static_cast<double>(p_out) / static_cast<double>(n_out);
  if (rate_in == rate_out) return 0.0;
  switch (direction) {
    case ScanDirection::kTwoSided:
      break;
    case ScanDirection::kHigh:
      if (rate_in <= rate_out) return 0.0;
      break;
    case ScanDirection::kLow:
      if (rate_in >= rate_out) return 0.0;
      break;
  }
  const double alt = MaxBernoulliLogLikelihood(c.p, c.n) +
                     MaxBernoulliLogLikelihood(p_out, n_out);
  const double null = MaxBernoulliLogLikelihood(c.total_p, c.total_n);
  const double llr = alt - null;
  // The alternative nests the null, so Λ is mathematically >= 0; clamp tiny
  // negative floating-point residue.
  return llr < 0.0 ? 0.0 : llr;
}

LogLikelihoodTable::LogLikelihoodTable(uint64_t max_count) {
  klogk_.resize(max_count + 1);
  klogk_[0] = 0.0;
  for (uint64_t k = 1; k <= max_count; ++k) {
    const auto kd = static_cast<double>(k);
    klogk_[k] = kd * std::log(kd);
  }
}

double BernoulliLogLikelihoodRatio(const ScanCounts& c, ScanDirection direction,
                                   const LogLikelihoodTable& table) {
  SFA_DCHECK(c.IsValid());
  SFA_DCHECK(c.total_n <= table.max_count());
  const uint64_t n_out = c.total_n - c.n;
  const uint64_t p_out = c.total_p - c.p;
  if (c.n == 0 || n_out == 0) return 0.0;

  // rate_in vs rate_out as exact integer cross-products: p/n <=> p_out/n_out
  // iff p*n_out <=> p_out*n. 128-bit products cannot overflow for any N.
  const auto lhs = static_cast<unsigned __int128>(c.p) * n_out;
  const auto rhs = static_cast<unsigned __int128>(p_out) * c.n;
  if (lhs == rhs) return 0.0;
  switch (direction) {
    case ScanDirection::kTwoSided:
      break;
    case ScanDirection::kHigh:
      if (lhs < rhs) return 0.0;
      break;
    case ScanDirection::kLow:
      if (lhs > rhs) return 0.0;
      break;
  }
  const double llr = table.MaxBernoulliLogLikelihood(c.p, c.n) +
                     table.MaxBernoulliLogLikelihood(p_out, n_out) -
                     table.MaxBernoulliLogLikelihood(c.total_p, c.total_n);
  return llr < 0.0 ? 0.0 : llr;
}

double LogSpatialUnfairnessLikelihood(const ScanCounts& c) {
  return BernoulliLogLikelihoodRatio(c, ScanDirection::kTwoSided) +
         NullLogLikelihood(c.total_p, c.total_n);
}

}  // namespace sfa::stats
