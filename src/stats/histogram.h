// Fixed-bin histogram for summarizing Monte Carlo null distributions in
// reports and benches.
#ifndef SFA_STATS_HISTOGRAM_H_
#define SFA_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sfa::stats {

class Histogram {
 public:
  /// Histogram of `num_bins` equal-width bins over [lo, hi). Values outside
  /// the range are clamped into the first/last bin. Requires lo < hi and
  /// num_bins >= 1.
  Histogram(double lo, double hi, uint32_t num_bins);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  uint32_t num_bins() const { return static_cast<uint32_t>(counts_.size()); }
  uint64_t total_count() const { return total_; }
  uint64_t bin_count(uint32_t bin) const { return counts_[bin]; }

  /// Inclusive-lower bin edge of bin `b`.
  double BinLow(uint32_t b) const;

  /// Fraction of mass at or above `value` (empirical upper tail).
  double FractionAtOrAbove(double value) const;

  /// Multi-line ASCII rendering (one bin per row with a bar).
  std::string ToAscii(uint32_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  std::vector<double> raw_;  // kept for exact tail queries
};

}  // namespace sfa::stats

#endif  // SFA_STATS_HISTOGRAM_H_
