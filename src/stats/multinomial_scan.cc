#include "stats/multinomial_scan.h"

#include <cmath>

#include "common/macros.h"

namespace sfa::stats {

namespace {

// k log(k/m) with the 0 log 0 convention.
inline double XLogXOverM(uint64_t k, uint64_t m) {
  if (k == 0) return 0.0;
  SFA_DCHECK(m > 0);
  return static_cast<double>(k) *
         std::log(static_cast<double>(k) / static_cast<double>(m));
}

}  // namespace

double MultinomialLogLikelihoodRatio(const std::vector<uint64_t>& inside,
                                     const std::vector<uint64_t>& total) {
  SFA_CHECK_MSG(!inside.empty(), "need at least one class");
  SFA_CHECK_MSG(inside.size() == total.size(),
                "inside has " << inside.size() << " classes, total "
                              << total.size());
  uint64_t n = 0, big_n = 0;
  for (size_t k = 0; k < inside.size(); ++k) {
    SFA_DCHECK(inside[k] <= total[k]);
    n += inside[k];
    big_n += total[k];
  }
  const uint64_t m = big_n - n;
  if (n == 0 || m == 0) return 0.0;  // degenerate: alternative collapses

  double llr = 0.0;
  for (size_t k = 0; k < inside.size(); ++k) {
    const uint64_t c = inside[k];
    const uint64_t d = total[k] - c;
    llr += XLogXOverM(c, n) + XLogXOverM(d, m) - XLogXOverM(total[k], big_n);
  }
  // Nested hypotheses: mathematically >= 0; clamp floating-point residue.
  return llr < 0.0 ? 0.0 : llr;
}

}  // namespace sfa::stats
