// The Bernoulli spatial scan statistic (Kulldorff 1997) as used by the
// paper's spatial-fairness likelihood-ratio test (§3).
//
// For a region R with n = n(R) individuals of which p = p(R) are positive,
// inside a population of N individuals with P positives:
//
//   log L0max        = ll(P, N)                      (one global rate)
//   log L1max(R)     = ll(p, n) + ll(P-p, N-n)       (inside/outside rates)
//   Λ(R)             = log L1max(R) - log L0max      (the log-likelihood ratio)
//
// with ll(k, m) = k log(k/m) + (m-k) log(1 - k/m) and 0·log 0 := 0. The paper
// calls L1max(R) the spatial unfairness likelihood (SUL, its Eq. 1) and keeps
// the statistic two-sided: any difference between the inside and outside rates
// counts. Directional variants restrict to regions whose inside rate is higher
// ("green") or lower ("red") than the outside rate (paper App. B.2).
#ifndef SFA_STATS_BERNOULLI_SCAN_H_
#define SFA_STATS_BERNOULLI_SCAN_H_

#include <cstdint>
#include <string>

namespace sfa::stats {

/// Which deviations of the inside rate count as signal.
enum class ScanDirection {
  kTwoSided,  ///< any inside/outside difference (the paper's default)
  kHigh,      ///< inside rate above outside rate ("green" regions)
  kLow,       ///< inside rate below outside rate ("red" regions)
};

const char* ScanDirectionToString(ScanDirection d);

/// Maximized Bernoulli log-likelihood of k successes in m trials:
/// k log(k/m) + (m-k) log(1-k/m), with the 0 log 0 = 0 convention.
/// Requires 0 <= k <= m; returns 0 for m == 0.
double MaxBernoulliLogLikelihood(uint64_t k, uint64_t m);

/// Counts that parameterize one evaluation of the scan statistic.
struct ScanCounts {
  uint64_t n = 0;  ///< individuals inside the region
  uint64_t p = 0;  ///< positives inside the region
  uint64_t total_n = 0;  ///< N, individuals overall
  uint64_t total_p = 0;  ///< P, positives overall

  bool IsValid() const {
    return p <= n && total_p <= total_n && n <= total_n && p <= total_p &&
           (total_n - n) >= (total_p - p);
  }

  double inside_rate() const { return n == 0 ? 0.0 : static_cast<double>(p) / n; }
  double outside_rate() const {
    const uint64_t m = total_n - n;
    return m == 0 ? 0.0 : static_cast<double>(total_p - p) / m;
  }
  double overall_rate() const {
    return total_n == 0 ? 0.0 : static_cast<double>(total_p) / total_n;
  }
};

/// Log-likelihood ratio Λ(R) >= 0 of the alternative (inside != outside)
/// over the null (single rate). Returns 0 when the observed inside and
/// outside rates coincide, or when the deviation does not match `direction`.
double BernoulliLogLikelihoodRatio(const ScanCounts& counts,
                                   ScanDirection direction = ScanDirection::kTwoSided);

/// log L1max(R): the log of the paper's SUL (Eq. 1). Equals
/// BernoulliLogLikelihoodRatio(counts) + log L0max.
double LogSpatialUnfairnessLikelihood(const ScanCounts& counts);

/// log L0max: maximized null log-likelihood for the whole dataset.
double NullLogLikelihood(uint64_t total_p, uint64_t total_n);

}  // namespace sfa::stats

#endif  // SFA_STATS_BERNOULLI_SCAN_H_
