// The Bernoulli spatial scan statistic (Kulldorff 1997) as used by the
// paper's spatial-fairness likelihood-ratio test (§3).
//
// For a region R with n = n(R) individuals of which p = p(R) are positive,
// inside a population of N individuals with P positives:
//
//   log L0max        = ll(P, N)                      (one global rate)
//   log L1max(R)     = ll(p, n) + ll(P-p, N-n)       (inside/outside rates)
//   Λ(R)             = log L1max(R) - log L0max      (the log-likelihood ratio)
//
// with ll(k, m) = k log(k/m) + (m-k) log(1 - k/m) and 0·log 0 := 0. The paper
// calls L1max(R) the spatial unfairness likelihood (SUL, its Eq. 1) and keeps
// the statistic two-sided: any difference between the inside and outside rates
// counts. Directional variants restrict to regions whose inside rate is higher
// ("green") or lower ("red") than the outside rate (paper App. B.2).
#ifndef SFA_STATS_BERNOULLI_SCAN_H_
#define SFA_STATS_BERNOULLI_SCAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sfa::stats {

/// Which deviations of the inside rate count as signal.
enum class ScanDirection {
  kTwoSided,  ///< any inside/outside difference (the paper's default)
  kHigh,      ///< inside rate above outside rate ("green" regions)
  kLow,       ///< inside rate below outside rate ("red" regions)
};

const char* ScanDirectionToString(ScanDirection d);

/// Maximized Bernoulli log-likelihood of k successes in m trials:
/// k log(k/m) + (m-k) log(1-k/m), with the 0 log 0 = 0 convention.
/// Requires 0 <= k <= m; returns 0 for m == 0.
double MaxBernoulliLogLikelihood(uint64_t k, uint64_t m);

/// Counts that parameterize one evaluation of the scan statistic.
struct ScanCounts {
  uint64_t n = 0;  ///< individuals inside the region
  uint64_t p = 0;  ///< positives inside the region
  uint64_t total_n = 0;  ///< N, individuals overall
  uint64_t total_p = 0;  ///< P, positives overall

  bool IsValid() const {
    return p <= n && total_p <= total_n && n <= total_n && p <= total_p &&
           (total_n - n) >= (total_p - p);
  }

  double inside_rate() const { return n == 0 ? 0.0 : static_cast<double>(p) / n; }
  double outside_rate() const {
    const uint64_t m = total_n - n;
    return m == 0 ? 0.0 : static_cast<double>(total_p - p) / m;
  }
  double overall_rate() const {
    return total_n == 0 ? 0.0 : static_cast<double>(total_p) / total_n;
  }
};

/// Log-likelihood ratio Λ(R) >= 0 of the alternative (inside != outside)
/// over the null (single rate). Returns 0 when the observed inside and
/// outside rates coincide, or when the deviation does not match `direction`.
double BernoulliLogLikelihoodRatio(const ScanCounts& counts,
                                   ScanDirection direction = ScanDirection::kTwoSided);

/// Memoized k·log k table for allocation-free, log-free LLR evaluation on the
/// Monte Carlo hot path. Every count entering the scan statistic is an
/// integer in [0, N], and
///
///   ll(k, m) = k log(k/m) + (m-k) log(1-k/m) = t[k] + t[m-k] - t[m]
///
/// with t[k] = k log k (t[0] = 0), so a whole Λ(R) evaluation is 9 table
/// lookups and adds — no std::log calls. The table costs (N+1) doubles and is
/// shared read-only across worker threads.
///
/// Table-based values agree with the direct formula to ~1 ulp of the additive
/// reassociation (see test_bernoulli_scan.cc); the Monte Carlo engine uses
/// the table for every world so null distributions are internally exact.
class LogLikelihoodTable {
 public:
  /// Builds t[k] = k log k for k in [0, max_count].
  explicit LogLikelihoodTable(uint64_t max_count);

  uint64_t max_count() const { return klogk_.size() - 1; }

  double klogk(uint64_t k) const { return klogk_[k]; }

  /// ll(k, m) via three lookups; requires k <= m <= max_count().
  double MaxBernoulliLogLikelihood(uint64_t k, uint64_t m) const {
    return klogk_[k] + klogk_[m - k] - klogk_[m];
  }

 private:
  std::vector<double> klogk_;
};

/// Table-driven Λ(R): identical semantics to the std::log overload (same
/// zero-gating for degenerate or direction-mismatched regions), with all
/// transcendentals replaced by lookups. Requires counts.total_n <=
/// table.max_count(). The direction gate compares integer cross-products
/// (p·n_out vs p_out·n), so gating decisions are exact.
double BernoulliLogLikelihoodRatio(const ScanCounts& counts, ScanDirection direction,
                                   const LogLikelihoodTable& table);

/// log L1max(R): the log of the paper's SUL (Eq. 1). Equals
/// BernoulliLogLikelihoodRatio(counts) + log L0max.
double LogSpatialUnfairnessLikelihood(const ScanCounts& counts);

/// log L0max: maximized null log-likelihood for the whole dataset.
double NullLogLikelihood(uint64_t total_p, uint64_t total_n);

}  // namespace sfa::stats

#endif  // SFA_STATS_BERNOULLI_SCAN_H_
