#include "stats/gumbel.h"

#include <cmath>

#include "common/macros.h"
#include "stats/descriptive.h"

namespace sfa::stats {

namespace {
constexpr double kEulerMascheroni = 0.5772156649015329;
}

GumbelDistribution::GumbelDistribution(double mu, double beta)
    : mu_(mu), beta_(beta) {
  SFA_CHECK_MSG(beta > 0.0, "Gumbel scale must be positive, got " << beta);
}

double GumbelDistribution::Cdf(double x) const {
  return std::exp(-std::exp(-(x - mu_) / beta_));
}

double GumbelDistribution::UpperTail(double x) const {
  const double z = (x - mu_) / beta_;
  // 1 - exp(-e^{-z}) = -expm1(-e^{-z}); for large z, e^{-z} underflows but
  // -expm1(-t) ~ t keeps full precision.
  return -std::expm1(-std::exp(-z));
}

double GumbelDistribution::Quantile(double q) const {
  SFA_CHECK_MSG(q > 0.0 && q < 1.0, "quantile level " << q << " outside (0,1)");
  return mu_ - beta_ * std::log(-std::log(q));
}

Result<GumbelDistribution> GumbelDistribution::FitMoments(
    std::span<const double> samples) {
  if (samples.size() < 2) {
    return Status::InvalidArgument("Gumbel fit needs at least 2 samples");
  }
  RunningStats stats;
  for (double v : samples) stats.Add(v);
  const double sd = std::sqrt(stats.variance_sample());
  if (!(sd > 0.0)) {
    return Status::InvalidArgument("Gumbel fit needs non-constant samples");
  }
  const double beta = sd * std::sqrt(6.0) / M_PI;
  const double mu = stats.mean() - kEulerMascheroni * beta;
  return GumbelDistribution(mu, beta);
}

}  // namespace sfa::stats
