#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sfa::stats {

namespace {

// k-means++ seeding: each next center is drawn with probability proportional
// to the squared distance from the nearest already-chosen center.
std::vector<geo::Point> PlusPlusInit(const std::vector<geo::Point>& points,
                                     uint32_t k, Rng* rng) {
  std::vector<geo::Point> centers;
  centers.reserve(k);
  centers.push_back(points[rng->NextUint64(points.size())]);
  std::vector<double> dist_sq(points.size(),
                              std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist_sq[i] = std::min(dist_sq[i], points[i].DistanceSquaredTo(centers.back()));
      total += dist_sq[i];
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; duplicate one.
      centers.push_back(centers.back());
      continue;
    }
    double u = rng->NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      u -= dist_sq[i];
      if (u < 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<geo::Point>& points,
                            const KMeansOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (points.size() < options.k) {
    return Status::InvalidArgument(
        StrFormat("k=%u exceeds number of points %zu", options.k, points.size()));
  }
  Rng rng(options.seed);
  KMeansResult result;
  result.centers = PlusPlusInit(points, options.k, &rng);
  result.assignment.assign(points.size(), 0);
  result.cluster_sizes.assign(options.k, 0);

  // Parallel assignment with deterministic reduction: fixed chunking and a
  // merge in chunk order keep floating-point sums identical for any thread
  // count.
  struct ChunkAccumulator {
    std::vector<geo::Point> sums;
    std::vector<uint32_t> counts;
    double inertia = 0.0;
  };
  const size_t num_chunks =
      std::min<size_t>(64, (points.size() + 1023) / 1024) + 1;
  const size_t chunk_size = (points.size() + num_chunks - 1) / num_chunks;

  std::vector<geo::Point> sums(options.k);
  std::vector<ChunkAccumulator> chunks(num_chunks);
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    DefaultThreadPool().ParallelFor(num_chunks, [&](size_t chunk) {
      ChunkAccumulator& acc = chunks[chunk];
      acc.sums.assign(options.k, geo::Point{0.0, 0.0});
      acc.counts.assign(options.k, 0u);
      acc.inertia = 0.0;
      const size_t begin = chunk * chunk_size;
      const size_t end = std::min(points.size(), begin + chunk_size);
      for (size_t i = begin; i < end; ++i) {
        double best = std::numeric_limits<double>::infinity();
        uint32_t best_c = 0;
        for (uint32_t c = 0; c < options.k; ++c) {
          const double d = points[i].DistanceSquaredTo(result.centers[c]);
          if (d < best) {
            best = d;
            best_c = c;
          }
        }
        result.assignment[i] = best_c;
        ++acc.counts[best_c];
        acc.sums[best_c] = acc.sums[best_c] + points[i];
        acc.inertia += best;
      }
    });
    std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0u);
    std::fill(sums.begin(), sums.end(), geo::Point{0.0, 0.0});
    result.inertia = 0.0;
    for (const ChunkAccumulator& acc : chunks) {
      for (uint32_t c = 0; c < options.k; ++c) {
        result.cluster_sizes[c] += acc.counts[c];
        sums[c] = sums[c] + acc.sums[c];
      }
      result.inertia += acc.inertia;
    }
    // Update step.
    double movement = 0.0;
    for (uint32_t c = 0; c < options.k; ++c) {
      geo::Point new_center;
      if (result.cluster_sizes[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its center.
        size_t farthest = 0;
        double farthest_d = -1.0;
        for (size_t i = 0; i < points.size(); ++i) {
          const double d =
              points[i].DistanceSquaredTo(result.centers[result.assignment[i]]);
          if (d > farthest_d) {
            farthest_d = d;
            farthest = i;
          }
        }
        new_center = points[farthest];
      } else {
        new_center = sums[c] * (1.0 / result.cluster_sizes[c]);
      }
      movement += new_center.DistanceSquaredTo(result.centers[c]);
      result.centers[c] = new_center;
    }
    if (movement < options.tolerance) break;
  }
  return result;
}

}  // namespace sfa::stats
