#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace sfa::stats {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance_population() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::variance_sample() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev_population() const {
  return std::sqrt(variance_population());
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(count_) *
             static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  return rs.mean();
}

double VariancePopulation(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.Add(v);
  return rs.variance_population();
}

double Quantile(std::vector<double> values, double q) {
  SFA_CHECK(!values.empty());
  SFA_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = static_cast<size_t>(std::ceil(pos));
  if (lo == hi) return values[lo];
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double KthLargest(std::vector<double> values, size_t k) {
  SFA_CHECK(k >= 1 && k <= values.size());
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(k - 1),
                   values.end(), std::greater<double>());
  return values[k - 1];
}

}  // namespace sfa::stats
