// Multinomial spatial scan statistic (Jung, Kulldorff & Richard 2010) — the
// multi-class generalization the paper's Bernoulli test derives from (§2.3,
// §3 "The discussion that follows is based on the multinomial spatial scan
// statistic").
//
// For K outcome classes, the null hypothesis holds one global class
// distribution; the alternative allows a region with different class
// proportions inside than outside. The log-likelihood ratio is
//
//   Λ(R) = Σ_k [ c_k log(c_k/n) + d_k log(d_k/m) − C_k log(C_k/N) ]
//
// with c_k/d_k/C_k the inside/outside/total counts of class k, n/m/N the
// inside/outside/total sizes, and 0·log 0 := 0. For K = 2 this reduces
// exactly to the two-sided Bernoulli scan LLR (a property test asserts it).
#ifndef SFA_STATS_MULTINOMIAL_SCAN_H_
#define SFA_STATS_MULTINOMIAL_SCAN_H_

#include <cstdint>
#include <vector>

namespace sfa::stats {

/// Log-likelihood ratio for class counts inside a region vs the totals.
/// `inside[k]` and `total[k]` are the class-k counts inside the region and
/// overall; requires inside[k] <= total[k] and at least one class. Returns 0
/// for degenerate regions (empty or everything).
double MultinomialLogLikelihoodRatio(const std::vector<uint64_t>& inside,
                                     const std::vector<uint64_t>& total);

}  // namespace sfa::stats

#endif  // SFA_STATS_MULTINOMIAL_SCAN_H_
