// Probability distributions needed by the audit framework and its tests:
// exact binomial pmf/cdf (log-space, stable for large n), normal cdf, and
// log-gamma. These back the false-alarm analysis (Fig. 6 of the paper) and
// the property tests for the scan statistic.
#ifndef SFA_STATS_DISTRIBUTIONS_H_
#define SFA_STATS_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace sfa::stats {

/// log Γ(x) for x > 0 (Lanczos approximation, |error| < 1e-13).
double LogGamma(double x);

/// log C(n, k); requires k <= n.
double LogBinomialCoefficient(uint64_t n, uint64_t k);

/// log P[Binomial(n, p) = k]. Handles p in {0, 1} exactly; -inf for
/// impossible outcomes.
double BinomialLogPmf(uint64_t k, uint64_t n, double p);

/// P[Binomial(n, p) = k].
double BinomialPmf(uint64_t k, uint64_t n, double p);

/// P[Binomial(n, p) <= k], summed in the shorter tail for accuracy.
double BinomialCdf(uint64_t k, uint64_t n, double p);

/// P[Binomial(n, p) >= k].
double BinomialSf(uint64_t k, uint64_t n, double p);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Standard normal density.
double NormalPdf(double z);

/// Two-sided binomial test p-value: probability under Binomial(n, p) of an
/// outcome at most as probable as the observed k (minlike method, the same
/// convention as R's binom.test).
double BinomialTestTwoSided(uint64_t k, uint64_t n, double p);

/// O(1)-per-draw Binomial(n, p) sampler for FIXED (n, p): a Walker/Vose
/// alias table over the (numerically supported) binomial outcomes, built once
/// in O(n). One draw costs one uniform and two table loads — no
/// transcendentals, no rejection loop.
///
/// This is the Monte Carlo engine's closed-form null sampler: a partition
/// family's cell keeps the same (n_c, ρ) across every simulated world, so
/// the per-cell pmf is computed once and each world pays O(cells) uniforms
/// total. The pmf is evaluated outward from the mode (stable recurrence);
/// outcomes whose probability underflows double precision are excluded,
/// a truncation below 1e-300 of mass. Use Rng::Binomial for one-off draws.
class FixedBinomialSampler {
 public:
  /// Degenerate sampler that always returns 0.
  FixedBinomialSampler() = default;

  FixedBinomialSampler(uint64_t n, double p);

  /// Draws one variate; consumes exactly one uniform unless the distribution
  /// is a point mass (then none).
  uint64_t Draw(Rng* rng) const {
    if (threshold_.empty()) return first_;
    const double x = rng->NextDouble() * static_cast<double>(threshold_.size());
    size_t i = static_cast<size_t>(x);
    if (i >= threshold_.size()) i = threshold_.size() - 1;  // u ~ 1 edge
    return first_ + ((x - static_cast<double>(i)) < threshold_[i] ? i : alias_[i]);
  }

  uint64_t n() const { return n_; }
  double p() const { return p_; }

 private:
  uint64_t n_ = 0;
  double p_ = 0.0;
  uint64_t first_ = 0;  // smallest representable outcome
  // Vose alias structure over outcomes [first_, first_ + K): entry i keeps
  // outcome first_+i with probability threshold_[i], else alias to
  // first_+alias_[i].
  std::vector<double> threshold_;
  std::vector<uint32_t> alias_;
};

}  // namespace sfa::stats

#endif  // SFA_STATS_DISTRIBUTIONS_H_
