// Probability distributions needed by the audit framework and its tests:
// exact binomial pmf/cdf (log-space, stable for large n), normal cdf, and
// log-gamma. These back the false-alarm analysis (Fig. 6 of the paper) and
// the property tests for the scan statistic.
#ifndef SFA_STATS_DISTRIBUTIONS_H_
#define SFA_STATS_DISTRIBUTIONS_H_

#include <cstdint>

namespace sfa::stats {

/// log Γ(x) for x > 0 (Lanczos approximation, |error| < 1e-13).
double LogGamma(double x);

/// log C(n, k); requires k <= n.
double LogBinomialCoefficient(uint64_t n, uint64_t k);

/// log P[Binomial(n, p) = k]. Handles p in {0, 1} exactly; -inf for
/// impossible outcomes.
double BinomialLogPmf(uint64_t k, uint64_t n, double p);

/// P[Binomial(n, p) = k].
double BinomialPmf(uint64_t k, uint64_t n, double p);

/// P[Binomial(n, p) <= k], summed in the shorter tail for accuracy.
double BinomialCdf(uint64_t k, uint64_t n, double p);

/// P[Binomial(n, p) >= k].
double BinomialSf(uint64_t k, uint64_t n, double p);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Standard normal density.
double NormalPdf(double z);

/// Two-sided binomial test p-value: probability under Binomial(n, p) of an
/// outcome at most as probable as the observed k (minlike method, the same
/// convention as R's binom.test).
double BinomialTestTwoSided(uint64_t k, uint64_t n, double p);

}  // namespace sfa::stats

#endif  // SFA_STATS_DISTRIBUTIONS_H_
