// Descriptive statistics: streaming mean/variance (Welford), order
// statistics, and empirical quantiles. Variance is the population variance
// by default because the MeanVar baseline of Xie et al. aggregates variances
// of finite partition populations, not samples.
#ifndef SFA_STATS_DESCRIPTIVE_H_
#define SFA_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace sfa::stats {

/// Numerically stable streaming accumulator for mean and variance.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divide by n); 0 for fewer than 2 observations.
  double variance_population() const;

  /// Sample variance (divide by n-1); 0 for fewer than 2 observations.
  double variance_sample() const;

  double stddev_population() const;

  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// Population variance of `values`.
double VariancePopulation(const std::vector<double>& values);

/// Empirical quantile with linear interpolation between order statistics
/// (type-7, the numpy/R default). q must be in [0, 1]; input need not be
/// sorted. Requires non-empty input.
double Quantile(std::vector<double> values, double q);

/// The k-th largest element (1-based: k=1 is the maximum). Requires
/// 1 <= k <= values.size().
double KthLargest(std::vector<double> values, size_t k);

}  // namespace sfa::stats

#endif  // SFA_STATS_DESCRIPTIVE_H_
