// Lloyd's k-means with k-means++ initialization over 2-d points. The paper
// places the centers of its square scan regions at the 100 k-means centers of
// the observation locations (§4.3); this is the implementation behind
// core::SquareScanFamily.
#ifndef SFA_STATS_KMEANS_H_
#define SFA_STATS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geo/point.h"

namespace sfa::stats {

struct KMeansOptions {
  uint32_t k = 8;
  uint32_t max_iterations = 50;
  /// Convergence threshold on total squared center movement per iteration.
  double tolerance = 1e-7;
  uint64_t seed = 42;
};

struct KMeansResult {
  std::vector<geo::Point> centers;       ///< k cluster centers
  std::vector<uint32_t> assignment;      ///< cluster of each input point
  std::vector<uint32_t> cluster_sizes;   ///< points per cluster
  double inertia = 0.0;                  ///< sum of squared point-center distances
  uint32_t iterations = 0;               ///< Lloyd iterations performed
};

/// Clusters `points` into options.k groups. Fails when k == 0 or k exceeds
/// the number of points. Deterministic for a fixed seed. Empty clusters are
/// re-seeded from the point farthest from its center.
Result<KMeansResult> KMeans(const std::vector<geo::Point>& points,
                            const KMeansOptions& options);

}  // namespace sfa::stats

#endif  // SFA_STATS_KMEANS_H_
