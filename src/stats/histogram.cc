#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::stats {

Histogram::Histogram(double lo, double hi, uint32_t num_bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / num_bins), counts_(num_bins, 0) {
  SFA_CHECK_MSG(lo < hi, "histogram range [" << lo << ", " << hi << ") is empty");
  SFA_CHECK(num_bins >= 1);
}

void Histogram::Add(double value) {
  auto bin = static_cast<int64_t>(std::floor((value - lo_) / bin_width_));
  bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
  raw_.push_back(value);
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double Histogram::BinLow(uint32_t b) const { return lo_ + b * bin_width_; }

double Histogram::FractionAtOrAbove(double value) const {
  if (total_ == 0) return 0.0;
  const auto count = static_cast<uint64_t>(
      std::count_if(raw_.begin(), raw_.end(), [&](double v) { return v >= value; }));
  return static_cast<double>(count) / static_cast<double>(total_);
}

std::string Histogram::ToAscii(uint32_t max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (uint32_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<uint32_t>(counts_[b] * max_width / peak);
    out += StrFormat("%10.3f | %-*s %llu\n", BinLow(b), static_cast<int>(max_width),
                     std::string(bar, '#').c_str(),
                     static_cast<unsigned long long>(counts_[b]));
  }
  return out;
}

}  // namespace sfa::stats
