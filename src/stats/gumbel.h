// Gumbel (type-I extreme value) tail approximation for scan-statistic
// p-values.
//
// A Monte Carlo null with W-1 worlds cannot resolve p-values below 1/W; yet
// strong findings (the paper's Λ ≈ 1000 against a critical value of ~10)
// deserve a quantitative tail estimate. Following the approach popularized
// for spatial scan statistics by Abrams, Kulldorff & Kleinman (2010), the
// null distribution of the *maximum* LLR across regions is approximately
// Gumbel; fitting its two parameters to the simulated maxima by the method
// of moments yields smooth, far-tail p-values that agree closely with the
// empirical distribution in the range the simulation can check.
#ifndef SFA_STATS_GUMBEL_H_
#define SFA_STATS_GUMBEL_H_

#include <span>

#include "common/status.h"

namespace sfa::stats {

/// Gumbel distribution with location mu and scale beta > 0:
/// CDF F(x) = exp(-exp(-(x - mu)/beta)).
class GumbelDistribution {
 public:
  GumbelDistribution(double mu, double beta);

  double mu() const { return mu_; }
  double beta() const { return beta_; }

  /// P[X <= x].
  double Cdf(double x) const;

  /// Upper-tail probability P[X > x], evaluated stably for large x (uses
  /// -expm1(-e^{-z}) so far-tail values do not round to zero prematurely).
  double UpperTail(double x) const;

  /// Quantile function: the x with F(x) = q, q in (0, 1).
  double Quantile(double q) const;

  /// Fits by the method of moments to samples (needs >= 2 distinct values):
  /// beta = s * sqrt(6)/pi, mu = mean - gamma*beta (gamma: Euler-Mascheroni).
  static Result<GumbelDistribution> FitMoments(std::span<const double> samples);

 private:
  double mu_;
  double beta_;
};

}  // namespace sfa::stats

#endif  // SFA_STATS_GUMBEL_H_
