#include "viz/svg.h"

#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::viz {

std::string Color::ToHex() const { return StrFormat("#%02x%02x%02x", r, g, b); }

SvgCanvas::SvgCanvas(const geo::Rect& data_bounds, uint32_t width, uint32_t height)
    : bounds_(data_bounds.Expanded(
          std::max(data_bounds.width(), data_bounds.height()) * 0.02)),
      width_(width),
      height_(height) {
  SFA_CHECK_MSG(width > 0 && height > 0, "canvas must have positive size");
  SFA_CHECK_MSG(bounds_.Area() > 0.0, "data bounds must have positive area");
}

geo::Point SvgCanvas::ToPixel(const geo::Point& data) const {
  const double x = (data.x - bounds_.min_x) / bounds_.width() * width_;
  // SVG y grows downward.
  const double y = (1.0 - (data.y - bounds_.min_y) / bounds_.height()) * height_;
  return {x, y};
}

void SvgCanvas::DrawPoint(const geo::Point& at, double radius_px, const Color& fill,
                          double opacity) {
  const geo::Point p = ToPixel(at);
  body_ += StrFormat(
      "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\" "
      "fill-opacity=\"%.3f\"/>\n",
      p.x, p.y, radius_px, fill.ToHex().c_str(), opacity);
}

void SvgCanvas::DrawRect(const geo::Rect& rect, const Color& stroke,
                         double stroke_px, double fill_opacity) {
  const geo::Point top_left = ToPixel({rect.min_x, rect.max_y});
  const geo::Point bottom_right = ToPixel({rect.max_x, rect.min_y});
  body_ += StrFormat(
      "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" "
      "fill-opacity=\"%.3f\" stroke=\"%s\" stroke-width=\"%.2f\"/>\n",
      top_left.x, top_left.y, bottom_right.x - top_left.x,
      bottom_right.y - top_left.y, stroke.ToHex().c_str(), fill_opacity,
      stroke.ToHex().c_str(), stroke_px);
}

void SvgCanvas::DrawPolygon(const geo::Polygon& polygon, const Color& stroke,
                            double stroke_px) {
  std::string points;
  for (const geo::Point& v : polygon.vertices()) {
    const geo::Point p = ToPixel(v);
    points += StrFormat("%.2f,%.2f ", p.x, p.y);
  }
  body_ += StrFormat(
      "<polygon points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%.2f\"/>\n",
      points.c_str(), stroke.ToHex().c_str(), stroke_px);
}

namespace {
std::string XmlEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

void SvgCanvas::DrawText(const geo::Point& at, const std::string& text,
                         double size_px, const Color& fill) {
  const geo::Point p = ToPixel(at);
  DrawTextAtPixel(p.x, p.y, text, size_px, fill);
}

void SvgCanvas::DrawTextAtPixel(double x_px, double y_px, const std::string& text,
                                double size_px, const Color& fill) {
  body_ += StrFormat(
      "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" font-family=\"sans-serif\" "
      "fill=\"%s\">%s</text>\n",
      x_px, y_px, size_px, fill.ToHex().c_str(), XmlEscape(text).c_str());
}

std::string SvgCanvas::Finish() const {
  return StrFormat(
             "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%u\" "
             "height=\"%u\" viewBox=\"0 0 %u %u\">\n"
             "<rect width=\"%u\" height=\"%u\" fill=\"white\"/>\n",
             width_, height_, width_, height_, width_, height_) +
         body_ + "</svg>\n";
}

Status SvgCanvas::WriteTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << Finish();
  out.flush();
  if (!out.good()) return Status::IOError("failed while writing '" + path + "'");
  return Status::OK();
}

}  // namespace sfa::viz
