// Map renderings of audit inputs and outputs — the visual idiom of the
// paper's figures: green/red outcome points, blue rectangles for flagged
// regions, state outlines for context.
#ifndef SFA_VIZ_MAP_RENDER_H_
#define SFA_VIZ_MAP_RENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "geo/rect.h"
#include "viz/svg.h"

namespace sfa::viz {

struct MapOptions {
  uint32_t width = 1000;
  /// Height 0 derives from the data aspect ratio (equirectangular).
  uint32_t height = 0;
  /// At most this many outcome points are drawn (uniformly strided).
  size_t max_points = 20000;
  double point_radius_px = 1.6;
  double point_opacity = 0.55;
  std::string title;
};

/// A rectangle to overlay (a finding, a planted region, a partition).
struct MapRegion {
  geo::Rect rect;
  Color color = Color::Blue();
  std::string caption;  ///< drawn beside the rectangle when non-empty
};

/// Renders the dataset as a green (positive) / red (negative) point map with
/// region overlays, in the style of the paper's Figures 1-5.
Result<std::string> RenderOutcomeMap(const data::OutcomeDataset& dataset,
                                     const std::vector<MapRegion>& regions,
                                     const MapOptions& options = {});

/// Renders and writes to `path` (.svg).
Status WriteOutcomeMap(const data::OutcomeDataset& dataset,
                       const std::vector<MapRegion>& regions,
                       const std::string& path, const MapOptions& options = {});

}  // namespace sfa::viz

#endif  // SFA_VIZ_MAP_RENDER_H_
