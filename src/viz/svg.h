// Minimal SVG document builder: enough vector-graphics surface to regenerate
// the paper's map figures (point clouds colored by outcome, rectangle
// overlays for regions, polygon outlines, captions). Coordinates are given
// in *data space*; the canvas maps a data rectangle onto the pixel viewport
// with the y axis flipped (SVG y grows downward, latitude grows upward).
#ifndef SFA_VIZ_SVG_H_
#define SFA_VIZ_SVG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "geo/point.h"
#include "geo/polygon.h"
#include "geo/rect.h"

namespace sfa::viz {

/// RGB color with CSS hex rendering.
struct Color {
  uint8_t r = 0, g = 0, b = 0;
  std::string ToHex() const;

  static Color Green() { return {0x2e, 0x8b, 0x57}; }
  static Color Red() { return {0xd0, 0x31, 0x2d}; }
  static Color Blue() { return {0x1f, 0x77, 0xb4}; }
  static Color Orange() { return {0xff, 0x7f, 0x0e}; }
  static Color Gray() { return {0x88, 0x88, 0x88}; }
  static Color Black() { return {0x00, 0x00, 0x00}; }
};

class SvgCanvas {
 public:
  /// Canvas of `width` x `height` pixels showing `data_bounds` (plus a small
  /// margin). Aspect ratio is not forced; pass proportionate sizes for
  /// undistorted maps.
  SvgCanvas(const geo::Rect& data_bounds, uint32_t width, uint32_t height);

  uint32_t width() const { return width_; }
  uint32_t height() const { return height_; }

  /// Data-space to pixel-space.
  geo::Point ToPixel(const geo::Point& data) const;

  /// Filled circle at a data-space location.
  void DrawPoint(const geo::Point& at, double radius_px, const Color& fill,
                 double opacity = 1.0);

  /// Rectangle outline (optionally translucent fill) in data space.
  void DrawRect(const geo::Rect& rect, const Color& stroke, double stroke_px = 1.5,
                double fill_opacity = 0.0);

  /// Closed polygon outline in data space.
  void DrawPolygon(const geo::Polygon& polygon, const Color& stroke,
                   double stroke_px = 1.0);

  /// Text anchored at a data-space location (pixel-space font size).
  void DrawText(const geo::Point& at, const std::string& text, double size_px = 12,
                const Color& fill = Color::Black());

  /// Text at a fixed pixel position (for titles/legends).
  void DrawTextAtPixel(double x_px, double y_px, const std::string& text,
                       double size_px = 12, const Color& fill = Color::Black());

  /// Completed document.
  std::string Finish() const;

  /// Writes Finish() to `path`.
  Status WriteTo(const std::string& path) const;

 private:
  geo::Rect bounds_;
  uint32_t width_;
  uint32_t height_;
  std::string body_;
};

}  // namespace sfa::viz

#endif  // SFA_VIZ_SVG_H_
