#include "viz/map_render.h"

#include <algorithm>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::viz {

Result<std::string> RenderOutcomeMap(const data::OutcomeDataset& dataset,
                                     const std::vector<MapRegion>& regions,
                                     const MapOptions& options) {
  SFA_RETURN_NOT_OK(dataset.Validate());
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  geo::Rect bounds = dataset.BoundingBox();
  for (const MapRegion& region : regions) bounds = bounds.Union(region.rect);
  if (!(bounds.Area() > 0.0)) {
    return Status::InvalidArgument("degenerate map bounds");
  }

  uint32_t height = options.height;
  if (height == 0) {
    height = static_cast<uint32_t>(std::clamp(
        options.width * bounds.height() / bounds.width(), 100.0, 4000.0));
  }
  SvgCanvas canvas(bounds, options.width, height);

  // Outcome points: negatives first so positives remain visible on top in
  // dense areas (matching the paper's green-over-red rendering).
  const size_t n = dataset.size();
  const size_t stride =
      n <= options.max_points ? 1 : (n + options.max_points - 1) / options.max_points;
  for (const uint8_t pass : {0, 1}) {
    for (size_t i = 0; i < n; i += stride) {
      if (dataset.predicted()[i] != pass) continue;
      canvas.DrawPoint(dataset.locations()[i], options.point_radius_px,
                       pass ? Color::Green() : Color::Red(),
                       options.point_opacity);
    }
  }

  for (const MapRegion& region : regions) {
    canvas.DrawRect(region.rect, region.color, 2.0, /*fill_opacity=*/0.08);
    if (!region.caption.empty()) {
      canvas.DrawText({region.rect.min_x, region.rect.max_y}, region.caption, 12,
                      region.color);
    }
  }
  if (!options.title.empty()) {
    canvas.DrawTextAtPixel(10, 18, options.title, 15);
  }
  return canvas.Finish();
}

Status WriteOutcomeMap(const data::OutcomeDataset& dataset,
                       const std::vector<MapRegion>& regions,
                       const std::string& path, const MapOptions& options) {
  SFA_ASSIGN_OR_RETURN(std::string svg, RenderOutcomeMap(dataset, regions, options));
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << svg;
  out.flush();
  if (!out.good()) return Status::IOError("failed while writing '" + path + "'");
  return Status::OK();
}

}  // namespace sfa::viz
