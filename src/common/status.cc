#include "common/status.h"

namespace sfa {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + msg_);
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace sfa
