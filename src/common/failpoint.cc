#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace sfa {

namespace {

enum class TriggerKind : uint8_t { kAlways, kOnce, kTimes, kEvery, kProb };

/// Parses a StatusCodeToString name back to a code. The spec language names
/// codes exactly as ToString prints them, so drills and logs line up.
Result<StatusCode> ParseStatusCode(std::string_view name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,   StatusCode::kNotFound,
      StatusCode::kOutOfRange,        StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kIOError,
      StatusCode::kParseError,        StatusCode::kInternal,
      StatusCode::kNotImplemented,    StatusCode::kResourceExhausted,
      StatusCode::kCancelled,         StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return Status::ParseError(
      StrFormat("unknown status code '%.*s' in failpoint action",
                static_cast<int>(name.size()), name.data()));
}

/// "name(args)" -> {name, args}; "name" -> {name, ""}. Rejects unbalanced
/// or trailing garbage.
Status SplitCall(std::string_view token, std::string_view* name,
                 std::string_view* args) {
  const size_t open = token.find('(');
  if (open == std::string_view::npos) {
    *name = token;
    *args = {};
    return Status::OK();
  }
  if (token.back() != ')') {
    return Status::ParseError(StrFormat(
        "malformed failpoint term '%.*s' (missing ')')",
        static_cast<int>(token.size()), token.data()));
  }
  *name = token.substr(0, open);
  *args = token.substr(open + 1, token.size() - open - 2);
  return Status::OK();
}

Result<uint64_t> ParsePositiveInt(std::string_view s, const char* what) {
  auto v = ParseInt64(Trim(s));
  if (!v.ok() || *v <= 0) {
    return Status::ParseError(StrFormat(
        "failpoint %s wants a positive integer, got '%.*s'", what,
        static_cast<int>(s.size()), s.data()));
  }
  return static_cast<uint64_t>(*v);
}

}  // namespace

struct Failpoints::Site {
  // Trigger.
  TriggerKind trigger = TriggerKind::kAlways;
  uint64_t trigger_n = 0;   ///< kTimes: first N hits; kEvery: period
  double prob = 0.0;        ///< kProb
  Rng prob_rng{0};          ///< kProb: seeded per-site stream

  // Action template (status/arg copied into the fired FailpointAction).
  FailpointActionKind action = FailpointActionKind::kNone;
  Status status;
  uint64_t arg = 0;

  // Counters (guarded by the registry lock).
  uint64_t hits = 0;
  uint64_t fires = 0;

  bool ShouldFire() {
    ++hits;
    if (action == FailpointActionKind::kNone) return false;  // `off`
    switch (trigger) {
      case TriggerKind::kAlways:
        return true;
      case TriggerKind::kOnce:
        return hits == 1;
      case TriggerKind::kTimes:
        return hits <= trigger_n;
      case TriggerKind::kEvery:
        return hits % trigger_n == 0;
      case TriggerKind::kProb:
        return prob_rng.Bernoulli(prob);
    }
    return false;
  }
};

struct Failpoints::Impl {
  mutable std::mutex mu;
  /// Ordered map so armed() lists sites deterministically.
  std::map<std::string, Site> sites;
};

std::atomic<int> Failpoints::armed_count_{0};

Failpoints::Failpoints() : impl_(new Impl) {
  if (const char* env = std::getenv("SFA_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    // A typo'd operator spec must be loud, not silently inert: crash early.
    const Status armed = ArmFromSpec(env);
    if (!armed.ok()) {
      std::fprintf(stderr, "fatal: SFA_FAILPOINTS: %s\n",
                   armed.ToString().c_str());
      std::abort();
    }
  }
}

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // leaked: see impl_ note
  return *instance;
}

Status Failpoints::Arm(const std::string& site, const std::string& rule) {
  const std::string_view trimmed = Trim(rule);
  if (site.empty() || trimmed.empty()) {
    return Status::InvalidArgument("failpoint site and rule must be non-empty");
  }

  // "[trigger:]action" — the split colon is the first one outside parens.
  std::string_view trigger_tok, action_tok = trimmed;
  int depth = 0;
  for (size_t i = 0; i < trimmed.size(); ++i) {
    if (trimmed[i] == '(') ++depth;
    if (trimmed[i] == ')') --depth;
    if (trimmed[i] == ':' && depth == 0) {
      trigger_tok = Trim(trimmed.substr(0, i));
      action_tok = Trim(trimmed.substr(i + 1));
      break;
    }
  }

  Site parsed;
  if (!trigger_tok.empty()) {
    std::string_view name, args;
    SFA_RETURN_NOT_OK(SplitCall(trigger_tok, &name, &args));
    if (name == "always") {
      parsed.trigger = TriggerKind::kAlways;
    } else if (name == "once") {
      parsed.trigger = TriggerKind::kOnce;
    } else if (name == "times") {
      parsed.trigger = TriggerKind::kTimes;
      auto n = ParsePositiveInt(args, "times(N)");
      if (!n.ok()) return n.status();
      parsed.trigger_n = *n;
    } else if (name == "every") {
      parsed.trigger = TriggerKind::kEvery;
      auto n = ParsePositiveInt(args, "every(N)");
      if (!n.ok()) return n.status();
      parsed.trigger_n = *n;
    } else if (name == "prob") {
      parsed.trigger = TriggerKind::kProb;
      const std::vector<std::string> parts = Split(args, ',');
      if (parts.size() != 2) {
        return Status::ParseError("failpoint prob wants prob(P,SEED)");
      }
      auto p = ParseDouble(Trim(parts[0]));
      if (!p.ok() || *p < 0.0 || *p > 1.0) {
        return Status::ParseError("failpoint prob P must be in [0,1]");
      }
      auto seed = ParseInt64(Trim(parts[1]));
      if (!seed.ok()) {
        return Status::ParseError("failpoint prob SEED must be an integer");
      }
      parsed.prob = *p;
      parsed.prob_rng = Rng(static_cast<uint64_t>(*seed));
    } else {
      return Status::ParseError(StrFormat(
          "unknown failpoint trigger '%.*s'", static_cast<int>(name.size()),
          name.data()));
    }
  }

  {
    std::string_view name, args;
    SFA_RETURN_NOT_OK(SplitCall(action_tok, &name, &args));
    if (name == "error") {
      parsed.action = FailpointActionKind::kError;
      const std::vector<std::string> parts = Split(args, ',');
      if (parts.empty() || Trim(parts[0]).empty()) {
        return Status::ParseError("failpoint error wants error(CODE[,MSG])");
      }
      auto code = ParseStatusCode(Trim(parts[0]));
      if (!code.ok()) return code.status();
      std::string msg = parts.size() > 1
                            ? std::string(Trim(parts[1]))
                            : StrFormat("injected by failpoint '%s'",
                                        site.c_str());
      parsed.status = Status(*code, std::move(msg));
    } else if (name == "delay") {
      parsed.action = FailpointActionKind::kDelay;
      auto ms = ParsePositiveInt(args, "delay(MS)");
      if (!ms.ok()) return ms.status();
      parsed.arg = *ms;
    } else if (name == "truncate") {
      parsed.action = FailpointActionKind::kTruncate;
      auto v = ParseInt64(Trim(args));  // truncate(0) is a valid full chop
      if (!v.ok() || *v < 0) {
        return Status::ParseError(
            "failpoint truncate wants truncate(BYTES >= 0)");
      }
      parsed.arg = static_cast<uint64_t>(*v);
    } else if (name == "corrupt") {
      if (!args.empty()) {
        return Status::ParseError("failpoint corrupt takes no arguments");
      }
      parsed.action = FailpointActionKind::kCorrupt;
    } else if (name == "off") {
      parsed.action = FailpointActionKind::kNone;
    } else {
      return Status::ParseError(StrFormat(
          "unknown failpoint action '%.*s'", static_cast<int>(name.size()),
          name.data()));
    }
  }

  std::unique_lock<std::mutex> lock(impl_->mu);
  auto [it, inserted] = impl_->sites.insert_or_assign(site, std::move(parsed));
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Failpoints::ArmFromSpec(const std::string& spec) {
  for (const std::string& entry : Split(spec, ';')) {
    const std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;  // tolerate trailing ';'
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError(StrFormat(
          "failpoint spec entry '%.*s' has no '='",
          static_cast<int>(trimmed.size()), trimmed.data()));
    }
    const Status armed = Arm(std::string(Trim(trimmed.substr(0, eq))),
                             std::string(trimmed.substr(eq + 1)));
    if (!armed.ok()) {
      return armed.WithContext(StrFormat("failpoint spec entry '%.*s'",
                                         static_cast<int>(trimmed.size()),
                                         trimmed.data()));
    }
  }
  return Status::OK();
}

void Failpoints::Disarm(const std::string& site) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->sites.erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  armed_count_.fetch_sub(static_cast<int>(impl_->sites.size()),
                         std::memory_order_relaxed);
  impl_->sites.clear();
}

FailpointAction Failpoints::Evaluate(const char* site) {
  FailpointAction action;
  uint64_t delay_ms = 0;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    auto it = impl_->sites.find(site);
    if (it == impl_->sites.end()) return action;
    Site& s = it->second;
    if (!s.ShouldFire()) return action;
    ++s.fires;
    action.kind = s.action;
    action.status = s.status;
    action.arg = s.arg;
    if (action.kind == FailpointActionKind::kDelay) delay_ms = s.arg;
  }
  // Sleep outside the registry lock so a delay site never serializes other
  // sites — delays exist to widen race windows, not to create lock convoys.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return action;
}

uint64_t Failpoints::HitCount(const std::string& site) const {
  std::unique_lock<std::mutex> lock(impl_->mu);
  auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.hits;
}

uint64_t Failpoints::FireCount(const std::string& site) const {
  std::unique_lock<std::mutex> lock(impl_->mu);
  auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> Failpoints::armed() const {
  std::unique_lock<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->sites.size());
  for (const auto& [name, site] : impl_->sites) names.push_back(name);
  return names;
}

void Failpoints::MutatePayload(const FailpointAction& action,
                               std::string* payload) {
  if (payload == nullptr) return;
  switch (action.kind) {
    case FailpointActionKind::kTruncate:
      if (action.arg < payload->size()) payload->resize(action.arg);
      break;
    case FailpointActionKind::kCorrupt:
      if (!payload->empty()) payload->back() ^= 0x5a;
      break;
    default:
      break;
  }
}

}  // namespace sfa
