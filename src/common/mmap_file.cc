#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace sfa {

Result<MmapFile> MmapFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOENT) {
      return Status::NotFound(StrFormat("'%s' does not exist", path.c_str()));
    }
    return Status::IOError(StrFormat("cannot open '%s' for mmap: %s",
                                     path.c_str(), std::strerror(err)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(StrFormat("cannot stat '%s' for mmap: %s",
                                     path.c_str(), std::strerror(err)));
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping pins the inode; the fd is no longer needed
  if (data == MAP_FAILED) {
    return Status::IOError(StrFormat("cannot mmap '%s' (%zu bytes): %s",
                                     path.c_str(), size,
                                     std::strerror(map_err)));
  }
  return MmapFile(data, size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace sfa
