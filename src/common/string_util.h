// Small string helpers shared across modules (CSV parsing, report printing).
#ifndef SFA_COMMON_STRING_UTIL_H_
#define SFA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sfa {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Strict full-string parses; reject trailing garbage and empty input.
Result<double> ParseDouble(std::string_view s);
Result<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-friendly count, e.g. 12345678 -> "12,345,678".
std::string WithThousands(int64_t value);

}  // namespace sfa

#endif  // SFA_COMMON_STRING_UTIL_H_
