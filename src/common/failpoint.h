// Deterministic fault injection for the serving stack.
//
// A *failpoint* is a named site in production code where a test (or an
// operator, via the SFA_FAILPOINTS environment variable) can inject a fault:
// an error Status, a delay, or — for write paths that opt in — a torn or
// corrupted payload. Sites are compiled in permanently and cost one relaxed
// atomic load when nothing is armed (the `SFA_FAILPOINT*` macros guard every
// registry access behind Failpoints::AnyArmed()), so the same binary that
// serves production traffic can run every failure drill.
//
// Arming is driven by a small spec language, one rule per site:
//
//   spec    := site '=' rule (';' site '=' rule)*
//   rule    := [trigger ':'] action            (trigger defaults to `always`)
//   trigger := 'always' | 'once' | 'times(' N ')' | 'every(' N ')'
//              | 'prob(' P ',' SEED ')'
//   action  := 'error(' CODE [',' MSG] ')' | 'delay(' MS ')'
//              | 'truncate(' BYTES ')' | 'corrupt' | 'off'
//
// e.g.  store.write=every(3):truncate(16);pipeline.dispatch=once:delay(25)
//
// Triggers are evaluated against a per-site hit counter (every call to
// Evaluate counts one hit, firing or not): `once` fires on the first hit
// only, `times(N)` on the first N, `every(N)` on hits N, 2N, 3N, ...,
// `prob(P,SEED)` on a seeded per-site Bernoulli(P) stream. All trigger state
// is per-site and serialized under the registry lock, so for a serialized
// call sequence the fire pattern is an exact, reproducible function of the
// spec — the foundation of the deterministic failure drills in
// tests/test_store_fault.cc and tests/test_deadline.cc.
//
// Actions: `error(CODE[,MSG])` makes the site return the given Status (CODE
// is a StatusCodeToString name, e.g. IOError or DeadlineExceeded); `delay(MS)`
// sleeps the calling thread — the natural race amplifier under TSan — and
// then continues; `truncate(BYTES)` / `corrupt` only have an effect at sites
// that pass a mutable payload (SFA_FAILPOINT_MUTATE), where they chop the
// buffer to BYTES or flip a byte, simulating a torn or bit-rotted write;
// `off` parses validly and never fires (a spec-level comment-out).
//
// Thread safety: Arm/Disarm and Evaluate are fully thread-safe. Sites are
// identified by string name; unknown names arm fine (the spec is decoupled
// from the binary's site inventory) and are reported by armed() for typo
// checking.
#ifndef SFA_COMMON_FAILPOINT_H_
#define SFA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sfa {

/// What an armed failpoint does when its trigger fires.
enum class FailpointActionKind : uint8_t {
  kNone = 0,   ///< not armed / trigger did not fire / `off`
  kError,      ///< return `status` from the site
  kDelay,      ///< sleep `arg` milliseconds, then continue
  kTruncate,   ///< chop a mutable payload to `arg` bytes
  kCorrupt,    ///< flip one byte of a mutable payload
};

/// The fired action of one Evaluate() call. kNone when nothing fired.
struct FailpointAction {
  FailpointActionKind kind = FailpointActionKind::kNone;
  Status status;      ///< kError: the Status the site should return
  uint64_t arg = 0;   ///< kDelay: milliseconds; kTruncate: byte count

  bool fired() const { return kind != FailpointActionKind::kNone; }
};

/// Process-wide failpoint registry (singleton). Tests arm/disarm directly;
/// the SFA_FAILPOINTS environment variable is parsed once, on first access.
class Failpoints {
 public:
  /// The registry. First call loads SFA_FAILPOINTS (if set).
  static Failpoints& Instance();

  /// True when at least one site is armed — the zero-cost gate the macros
  /// check before touching the registry.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms one site with `rule` ("[trigger:]action", see file comment).
  /// Re-arming a site replaces its rule and resets its hit counter.
  Status Arm(const std::string& site, const std::string& rule);

  /// Arms every rule of a multi-site spec ("site=rule;site=rule"). Rules
  /// before a malformed entry stay armed; the error names the bad entry.
  Status ArmFromSpec(const std::string& spec);

  /// Disarms one site (no-op when not armed).
  void Disarm(const std::string& site);

  /// Disarms every site and resets all hit counters. Tests call this in
  /// SetUp/TearDown so specs never leak across cases.
  void DisarmAll();

  /// Evaluates `site`: counts one hit and, when armed and triggered, returns
  /// the action (kDelay sleeps internally before returning, so callers that
  /// only care about errors can ignore non-error actions). Prefer the
  /// SFA_FAILPOINT* macros, which skip this entirely when nothing is armed.
  FailpointAction Evaluate(const char* site);

  /// Total Evaluate() calls against `site` since it was (re-)armed; 0 when
  /// never armed. For test assertions on drill coverage.
  uint64_t HitCount(const std::string& site) const;

  /// Fired evaluations of `site` since it was (re-)armed.
  uint64_t FireCount(const std::string& site) const;

  /// Names of currently armed sites (sorted), for typo diagnostics.
  std::vector<std::string> armed() const;

  /// Applies a fired truncate/corrupt action to `payload` (no-op for other
  /// kinds). Truncation never grows the payload; corruption flips one byte
  /// deterministically (last byte) so checksums break but sizes don't.
  static void MutatePayload(const FailpointAction& action, std::string* payload);

 private:
  Failpoints();
  struct Site;

  static std::atomic<int> armed_count_;

  struct Impl;
  Impl* impl_;  ///< intentionally leaked: sites may fire during static teardown
};

}  // namespace sfa

/// Evaluates a failpoint and hands the fired action to `handler_code`, which
/// sees it as `const FailpointAction& fp_action`. Zero-cost when nothing is
/// armed anywhere in the process.
#define SFA_FAILPOINT_WITH(site, handler_code)                      \
  do {                                                              \
    if (::sfa::Failpoints::AnyArmed()) {                            \
      const ::sfa::FailpointAction fp_action =                      \
          ::sfa::Failpoints::Instance().Evaluate(site);             \
      if (fp_action.fired()) {                                      \
        handler_code;                                               \
      }                                                             \
    }                                                               \
  } while (0)

/// Evaluates a failpoint in a Status-returning function: an error action
/// returns its Status from the enclosing function; delays sleep and continue.
#define SFA_FAILPOINT(site)                                           \
  SFA_FAILPOINT_WITH(site, {                                          \
    if (fp_action.kind == ::sfa::FailpointActionKind::kError) {       \
      return fp_action.status;                                        \
    }                                                                 \
  })

/// Same, for functions returning Result<T> (Status converts implicitly).

/// Evaluates a write-path failpoint against a mutable std::string payload:
/// truncate/corrupt actions mutate `payload_ptr` in place (the write then
/// proceeds with the damaged bytes — a torn write); error actions return
/// their Status; delays sleep and continue.
#define SFA_FAILPOINT_MUTATE(site, payload_ptr)                       \
  SFA_FAILPOINT_WITH(site, {                                          \
    if (fp_action.kind == ::sfa::FailpointActionKind::kError) {       \
      return fp_action.status;                                        \
    }                                                                 \
    ::sfa::Failpoints::MutatePayload(fp_action, payload_ptr);         \
  })

#endif  // SFA_COMMON_FAILPOINT_H_
