#include "common/timer.h"

#include "common/string_util.h"

namespace sfa {

std::string Stopwatch::ElapsedString() const {
  const double secs = ElapsedSeconds();
  if (secs >= 1.0) return StrFormat("%.2f s", secs);
  return StrFormat("%.1f ms", secs * 1e3);
}

}  // namespace sfa
