// Process identity and liveness primitives for the multi-process calibration
// fabric (common/lease.h, core/calibration_store.h). Deliberately tiny: the
// fabric's crash-safety story rests on two facts a cooperating process can
// check cheaply — "what is my pid" and "does pid P still exist" — plus the
// filesystem mtime clock that lease heartbeats are written against.
#ifndef SFA_COMMON_PROCESS_UTIL_H_
#define SFA_COMMON_PROCESS_UTIL_H_

#include <cstdint>

namespace sfa {

/// The calling process's pid.
int CurrentPid();

/// True when a process with `pid` currently exists (kill(pid, 0)). A live
/// process we lack permission to signal still counts as alive (EPERM);
/// pid <= 0 is never alive. NOTE pid reuse: a recycled pid makes a dead
/// lease holder look alive — which is why lease staleness (common/lease.h)
/// also trips on heartbeat age, never on liveness alone.
bool ProcessAlive(int pid);

}  // namespace sfa

#endif  // SFA_COMMON_PROCESS_UTIL_H_
