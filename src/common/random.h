// Deterministic pseudo-random number generation.
//
// The library's statistical results must be reproducible across runs and
// thread counts, so all stochastic components (dataset generators, Monte
// Carlo worlds, k-means init, forest bagging) draw from explicitly seeded
// generators. Xoshiro256++ is the workhorse (fast, 2^256 period, passes
// BigCrush); SplitMix64 seeds it and derives independent per-task substreams.
#ifndef SFA_COMMON_RANDOM_H_
#define SFA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sfa {

/// SplitMix64: tiny 64-bit generator used to expand seeds. Each call advances
/// the state by a fixed odd constant and scrambles it, so nearby seeds give
/// unrelated outputs.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++ by Blackman & Vigna. Satisfies the C++ UniformRandomBitGenerator
/// concept so it can drive <random> distributions where convenient, but the
/// member helpers below are preferred (they are portable across standard
/// library implementations, which <random> distributions are not).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words via SplitMix64(seed).
  explicit Rng(uint64_t seed = 0xD1B54A32D192ED03ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method
  /// (unbiased). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Marsaglia polar method (cached spare deviate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS rejection for large).
  uint64_t Poisson(double mean);

  /// Binomial(n, p), exact for all (n, p): CDF inversion by sequential
  /// search when n·min(p,1-p) is small (O(n·p) cheap arithmetic steps, no
  /// logs), Hörmann's BTRS transformed rejection otherwise (O(1) expected
  /// draws). This is the closed-form null-world sampler of the Monte Carlo
  /// engine: partition families draw per-cell positives directly instead of
  /// labeling N points.
  uint64_t Binomial(uint64_t n, double p);

  /// Samples an index in [0, weights.size()) proportional to weights (all
  /// weights must be >= 0 and not all zero).
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of the range [first, last).
  template <typename It>
  void Shuffle(It first, It last) {
    auto n = static_cast<uint64_t>(last - first);
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = NextUint64(i);
      std::swap(first[i - 1], first[j]);
    }
  }

  /// Derives an independent substream generator for task `index`. Two
  /// generators Split(a) and Split(b) with a != b are statistically
  /// independent for all practical purposes.
  Rng Split(uint64_t index) const;

 private:
  uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace sfa

#endif  // SFA_COMMON_RANDOM_H_
