// File-based leases: cross-process mutual exclusion with crash recovery,
// built from three filesystem atomics and one liveness probe.
//
// A lease is one file. Holding it means "I am the unique worker for this
// name until I release it, heartbeat-stop, or die". The protocol:
//
//   acquire    open(O_CREAT|O_EXCL) — atomic on POSIX filesystems, so of any
//              number of racing processes (or threads) exactly one creates
//              the file. The winner immediately writes its identity
//              (pid + random nonce + start time) into it.
//   heartbeat  touch the file's mtime. Rate-limited internally (at most one
//              touch per heartbeat interval) so hot loops can call it at
//              every batch boundary for free; thread-safe, so parallel
//              workers of one computation can all report liveness through
//              the single lease.
//   release    unlink — but only after re-reading the file and matching the
//              embedded nonce, so a holder that stalled past the TTL and was
//              taken over never deletes its successor's lease.
//   staleness  a lease is stale when its holder pid is dead, or when its
//              heartbeat (mtime) is older than the TTL. The TTL arm covers
//              pid reuse and wedged-but-alive holders; the pid arm makes
//              recovery from a clean crash immediate.
//   takeover   reclaiming a stale lease must never delete a FRESH lease —
//              racer B may judge the old file stale, lose the CPU while
//              racer A reaps it AND publishes a new lease at the same path,
//              and then delete A's live lease, electing two owners. (A bare
//              rename() has the same hole: it moves whatever is at the path
//              *now*.) So every deletion decision — reap, release, recovery
//              sweep — re-judges the file under an exclusive flock() on a
//              `<lease>.lk` guard file and unlinks while still holding it.
//              The reaper then loops back to the O_EXCL create, which it can
//              still lose to a third party — acquisition, not deletion,
//              crowns the owner.
//
// Every step tolerates kill -9 at any instant: a crashed holder leaves a
// lease that goes stale (dead pid / no heartbeats); a reaper killed inside
// the guard leaves no wedge, because the kernel drops flocks with the
// process. The zero-byte .lk guard files are deliberately never unlinked —
// removing a lock file while another process holds its fd reintroduces the
// very race the lock exists to close.
//
// Used by core/calibration_store.h as the per-CalibrationKey cross-process
// singleflight guard; drilled by tests/test_lease.cc and the kill -9 chaos
// suite tests/test_crash_fabric.cc.
#ifndef SFA_COMMON_LEASE_H_
#define SFA_COMMON_LEASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace sfa {

/// Parsed identity of a lease file's current holder.
struct LeaseHolder {
  int pid = 0;
  uint64_t nonce = 0;
  /// Milliseconds since the holder's last heartbeat (file mtime). Negative
  /// clock skew clamps to 0.
  double heartbeat_age_ms = 0.0;
  /// False when the file is absent, unreadable, or not yet fully written (a
  /// holder between O_EXCL create and the identity write). An unparsed but
  /// recently-touched lease is treated as LIVE — never reap a lease you
  /// cannot read until its mtime is provably past the TTL.
  bool parsed = false;
};

/// An acquired lease. Move-free handle: hold by unique_ptr. The destructor
/// releases (best-effort) so a normally-exiting process never leaks leases;
/// a killed process leaks the file by design and recovery reclaims it.
class FileLease {
 public:
  struct AcquireOutcome {
    /// Non-null iff the lease was acquired.
    std::unique_ptr<FileLease> lease;
    /// The acquisition reclaimed a stale predecessor on the way.
    bool takeover = false;
    /// When not acquired: the live holder observed (parsed=false if it was
    /// mid-write or vanished between probes).
    LeaseHolder holder;
  };

  /// One non-blocking acquisition attempt for the lease file at `path` (the
  /// parent directory must exist). ttl_ms <= 0 disables the heartbeat-age
  /// arm of staleness (dead-pid reclamation still applies). Returns a
  /// holder-occupied outcome rather than blocking; callers poll.
  static Result<AcquireOutcome> TryAcquire(const std::string& path,
                                           double ttl_ms,
                                           double heartbeat_interval_ms);

  ~FileLease();
  FileLease(const FileLease&) = delete;
  FileLease& operator=(const FileLease&) = delete;

  /// Touches the lease mtime, rate-limited to the acquire-time heartbeat
  /// interval. Thread-safe; free when called more often than the interval.
  void Heartbeat();

  /// Unlinks the lease iff it still carries this lease's nonce (a successor
  /// after TTL takeover is left untouched). Idempotent.
  void Release();

  const std::string& path() const { return path_; }
  uint64_t nonce() const { return nonce_; }

 private:
  FileLease(std::string path, uint64_t nonce, double heartbeat_interval_ms);

  const std::string path_;
  const uint64_t nonce_;
  const double heartbeat_interval_ms_;
  std::atomic<int64_t> last_touch_ns_;
  std::atomic<bool> released_{false};
};

/// Reads and parses the lease file at `path` (heartbeat age from mtime).
LeaseHolder ReadLeaseHolder(const std::string& path);

/// The staleness rule: holder provably dead, or heartbeat older than the TTL
/// (when ttl_ms > 0). An unparsed holder is judged on mtime age alone.
bool LeaseIsStale(const LeaseHolder& holder, double ttl_ms);

/// Recovery sweep over `dir`: removes every stale `*.lease` file (re-judged
/// under its flock guard, so a concurrent takeover's fresh lease is safe)
/// and every abandoned `*.reap.*` takeover tombstone left by older builds
/// (reaper pid dead, or older than the TTL). A missing directory sweeps
/// zero. Returns the number of files removed; losing a removal race to a
/// concurrent sweeper is not an error.
uint64_t ReclaimStaleLeases(const std::string& dir, double ttl_ms);

}  // namespace sfa

#endif  // SFA_COMMON_LEASE_H_
