#include "common/lease.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/process_util.h"
#include "common/string_util.h"

namespace sfa {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Milliseconds between a file mtime and the file clock's now; clamped >= 0.
double MtimeAgeMs(const std::filesystem::path& path, std::error_code& ec) {
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return 0.0;
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  const double ms =
      std::chrono::duration<double, std::milli>(age).count();
  return ms < 0.0 ? 0.0 : ms;
}

/// A per-process nonce stream: mixes pid, a monotone counter, and the steady
/// clock so two processes (or two acquisitions in one process) never mint
/// the same lease identity.
uint64_t NextNonce() {
  static std::atomic<uint64_t> counter{0};
  uint64_t z = static_cast<uint64_t>(CurrentPid());
  z = (z << 32) ^ static_cast<uint64_t>(SteadyNowNs());
  z ^= counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Pid of the reaper embedded in a tombstone name
/// ("<lease>.reap.<pid>.<seq>"); 0 when the name doesn't parse.
int TombstoneReaperPid(const std::string& filename) {
  const size_t tag = filename.rfind(".reap.");
  if (tag == std::string::npos) return 0;
  return std::atoi(filename.c_str() + tag + 6);
}

/// Exclusive advisory lock on `<lease>.lk`, serialising every decision that
/// deletes a lease file (reap, release, recovery sweep) against the same
/// decision elsewhere. Judging staleness and unlinking must be one atom:
/// between an unguarded read and the unlink, a racer can reap the stale
/// lease AND publish a fresh one at the same path, and the unlink then
/// kills the fresh lease — electing two owners. flock() is dropped by the
/// kernel when the holder dies, so a reaper killed inside the guard leaves
/// no wedge. The zero-byte .lk file is never unlinked: removing a lock file
/// while another process holds its fd would hand out two locks on what each
/// side believes is the same name.
class ReapGuard {
 public:
  explicit ReapGuard(const std::string& lease_path) {
    fd_ = ::open((lease_path + ".lk").c_str(),
                 O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ReapGuard() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  ReapGuard(const ReapGuard&) = delete;
  ReapGuard& operator=(const ReapGuard&) = delete;

  bool locked() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace

LeaseHolder ReadLeaseHolder(const std::string& path) {
  LeaseHolder holder;
  std::error_code ec;
  holder.heartbeat_age_ms = MtimeAgeMs(path, ec);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return holder;  // absent (or unreadable): parsed=false
  char buf[160];
  const size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  int pid = 0;
  unsigned long long nonce = 0;
  if (std::sscanf(buf, "pid=%d nonce=%llx", &pid, &nonce) == 2) {
    holder.pid = pid;
    holder.nonce = nonce;
    holder.parsed = true;
  }
  return holder;
}

bool LeaseIsStale(const LeaseHolder& holder, double ttl_ms) {
  if (holder.parsed && !ProcessAlive(holder.pid)) return true;
  return ttl_ms > 0.0 && holder.heartbeat_age_ms > ttl_ms;
}

Result<FileLease::AcquireOutcome> FileLease::TryAcquire(
    const std::string& path, double ttl_ms, double heartbeat_interval_ms) {
  AcquireOutcome outcome;
  // Bounded retries: each loop either creates the file, observes a live
  // holder (return), or wins/loses a tombstone rename. Pathological races
  // (a takeover storm) report the last observed holder instead of spinning.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (fd >= 0) {
      const uint64_t nonce = NextNonce();
      const auto unix_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count();
      const std::string content = StrFormat(
          "pid=%d nonce=%016llx start_unix_ms=%lld\n", CurrentPid(),
          static_cast<unsigned long long>(nonce),
          static_cast<long long>(unix_ms));
      const ssize_t written = ::write(fd, content.data(), content.size());
      ::close(fd);
      if (written != static_cast<ssize_t>(content.size())) {
        // A lease whose identity never landed would be unparseable (live
        // until TTL) — remove it rather than squat on the name.
        ::unlink(path.c_str());
        return Status::IOError(
            StrFormat("short write creating lease '%s'", path.c_str()));
      }
      outcome.lease.reset(
          new FileLease(path, nonce, heartbeat_interval_ms));
      return outcome;
    }
    if (errno != EEXIST) {
      return Status::IOError(StrFormat("cannot create lease '%s': %s",
                                       path.c_str(), std::strerror(errno)));
    }

    const LeaseHolder holder = ReadLeaseHolder(path);
    if (!LeaseIsStale(holder, ttl_ms)) {
      outcome.holder = holder;
      return outcome;  // live holder; caller polls
    }
    // Stale: reap under the per-lease guard, re-judging staleness while the
    // lock is held. An absent file re-reads as not-stale (parsed=false, age
    // 0), so a racer that finds the reap already done simply falls through
    // to re-contest the O_EXCL create — acquisition, not deletion, crowns
    // the owner.
    {
      ReapGuard guard(path);
      if (!guard.locked()) {
        return Status::IOError(
            StrFormat("cannot lock reap guard for lease '%s': %s",
                      path.c_str(), std::strerror(errno)));
      }
      if (LeaseIsStale(ReadLeaseHolder(path), ttl_ms) &&
          ::unlink(path.c_str()) == 0) {
        outcome.takeover = true;
      }
    }
  }
  outcome.takeover = false;
  outcome.holder = ReadLeaseHolder(path);
  return outcome;  // contention storm: report unheld-by-us, caller polls
}

FileLease::FileLease(std::string path, uint64_t nonce,
                     double heartbeat_interval_ms)
    : path_(std::move(path)),
      nonce_(nonce),
      heartbeat_interval_ms_(heartbeat_interval_ms),
      last_touch_ns_(SteadyNowNs()) {}

FileLease::~FileLease() { Release(); }

void FileLease::Heartbeat() {
  if (released_.load(std::memory_order_acquire)) return;
  const int64_t now = SteadyNowNs();
  int64_t last = last_touch_ns_.load(std::memory_order_relaxed);
  const int64_t interval_ns =
      static_cast<int64_t>(heartbeat_interval_ms_ * 1e6);
  // One thread wins each interval; everyone else returns without a syscall,
  // which is what makes per-batch-boundary heartbeats free.
  if (now - last < interval_ns ||
      !last_touch_ns_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    return;
  }
  std::error_code ec;
  std::filesystem::last_write_time(
      path_, std::filesystem::file_time_type::clock::now(), ec);
  // A failed touch is not fatal: the lease just ages toward the TTL, and a
  // takeover then costs one duplicate (byte-identical) computation.
}

void FileLease::Release() {
  if (released_.exchange(true, std::memory_order_acq_rel)) return;
  // Nonce guard under the reap lock: only delete the file if it is still
  // OUR lease. A holder that stalled past the TTL may have been taken over;
  // deleting the successor's lease would let a third process
  // double-acquire. The guard makes read + unlink one atom against a reaper
  // replacing the file in between; if the lock cannot be taken the release
  // proceeds unguarded (best-effort, as a crashed holder would leak anyway).
  ReapGuard guard(path_);
  const LeaseHolder holder = ReadLeaseHolder(path_);
  if (holder.parsed && holder.nonce == nonce_) {
    ::unlink(path_.c_str());
  }
}

uint64_t ReclaimStaleLeases(const std::string& dir, double ttl_ms) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;  // missing/unreadable directory: nothing to reclaim
  uint64_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".reap.") != std::string::npos) {
      // Takeover tombstone left by an older build's rename-based reap; no
      // current code creates these, but a fabric can mix binary versions.
      const int reaper = TombstoneReaperPid(name);
      std::error_code age_ec;
      const double age = MtimeAgeMs(entry.path(), age_ec);
      const bool stale = (reaper > 0 && !ProcessAlive(reaper)) ||
                         (ttl_ms > 0.0 && age > ttl_ms);
      std::error_code rm_ec;
      if (stale && std::filesystem::remove(entry.path(), rm_ec) && !rm_ec) {
        ++removed;
      }
    } else if (entry.path().extension() == ".lease") {
      const std::string path = entry.path().string();
      if (!LeaseIsStale(ReadLeaseHolder(path), ttl_ms)) continue;
      // Re-judge and unlink under the guard: a concurrent takeover may have
      // reaped this lease and published a fresh one since the read above.
      ReapGuard guard(path);
      if (guard.locked() && LeaseIsStale(ReadLeaseHolder(path), ttl_ms) &&
          ::unlink(path.c_str()) == 0) {
        ++removed;
      }
    }
  }
  return removed;
}

}  // namespace sfa
