// Invariant-checking and status-propagation macros.
//
// SFA_CHECK*   — fatal assertions for programming errors; enabled in all builds.
// SFA_DCHECK*  — fatal assertions compiled out in NDEBUG builds.
// SFA_RETURN_NOT_OK / SFA_ASSIGN_OR_RETURN — early-return plumbing for Status
// and Result<T> (see common/status.h).
#ifndef SFA_COMMON_MACROS_H_
#define SFA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/status.h"

namespace sfa::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "SFA_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace sfa::internal

#define SFA_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::sfa::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                \
  } while (0)

#define SFA_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream sfa_oss_;                                    \
      sfa_oss_ << msg; /* NOLINT */                                   \
      ::sfa::internal::CheckFailed(__FILE__, __LINE__, #expr,         \
                                   sfa_oss_.str());                   \
    }                                                                 \
  } while (0)

#define SFA_CHECK_OK(status_expr)                                        \
  do {                                                                   \
    const ::sfa::Status sfa_st_ = (status_expr);                         \
    if (!sfa_st_.ok()) {                                                 \
      ::sfa::internal::CheckFailed(__FILE__, __LINE__, #status_expr,     \
                                   sfa_st_.ToString());                  \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define SFA_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SFA_DCHECK(expr) SFA_CHECK(expr)
#endif

// Propagates a non-OK Status to the caller.
#define SFA_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::sfa::Status sfa_st_ = (expr);          \
    if (!sfa_st_.ok()) return sfa_st_;       \
  } while (0)

#define SFA_CONCAT_IMPL(a, b) a##b
#define SFA_CONCAT(a, b) SFA_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// moves the value into `lhs` (which may be a declaration).
#define SFA_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  SFA_ASSIGN_OR_RETURN_IMPL(SFA_CONCAT(sfa_result_, __LINE__), lhs, rexpr)

#define SFA_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#endif  // SFA_COMMON_MACROS_H_
