// Minimal leveled logger writing to stderr. Intended for library diagnostics
// (Monte Carlo progress, dataset generation summaries); quiet by default at
// kInfo. Thread-safe: each log line is formatted into one buffer and written
// with a single fwrite.
#ifndef SFA_COMMON_LOGGING_H_
#define SFA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sfa {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void LogLine(LogLevel level, const std::string& msg);

/// Stream-style log sink used by the SFA_LOG macro; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}  // NOLINT(runtime/explicit)
  ~LogMessage() { LogLine(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sfa

#define SFA_LOG(level)                                               \
  if (::sfa::LogLevel::level < ::sfa::GetLogLevel()) {               \
  } else /* NOLINT */                                                \
    ::sfa::internal::LogMessage(::sfa::LogLevel::level).stream()

#endif  // SFA_COMMON_LOGGING_H_
