// Wall-clock stopwatch for harness reporting.
#ifndef SFA_COMMON_TIMER_H_
#define SFA_COMMON_TIMER_H_

#include <chrono>
#include <string>

namespace sfa {

/// Starts on construction; Elapsed* report time since construction or the
/// last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// "1.23 s" / "45.6 ms" style rendering.
  std::string ElapsedString() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sfa

#endif  // SFA_COMMON_TIMER_H_
