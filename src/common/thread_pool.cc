#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace sfa {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(TaskGroup* group, std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(Entry{std::move(task), group});
    ++in_flight_;
    if (group != nullptr) ++group->pending_;
  }
  task_available_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(nullptr, std::move(task));
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  Enqueue(group, std::move(task));
}

void ThreadPool::FinishTask(TaskGroup* group) {
  --in_flight_;
  if (group != nullptr && --group->pending_ == 0) {
    // Helpers idle-wait on task_available_; wake them all so any thread
    // waiting on this group re-checks its predicate.
    task_available_.notify_all();
  }
  if (in_flight_ == 0) all_done_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WaitGroup(TaskGroup* group) {
  std::unique_lock<std::mutex> lock(mu_);
  while (group->pending_ > 0) {
    if (!tasks_.empty()) {
      Entry entry = std::move(tasks_.front());
      tasks_.pop();
      lock.unlock();
      entry.fn();
      lock.lock();
      FinishTask(entry.group);
    } else {
      // The group's remaining tasks are all being executed by other threads;
      // sleep until either new work arrives to help with or the group
      // completes (FinishTask broadcasts on task_available_).
      task_available_.wait(lock, [&] {
        return group->pending_ == 0 || !tasks_.empty();
      });
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic chunking: ~4 chunks per worker bounds both queue overhead and
  // load imbalance for heterogeneous task costs.
  const size_t chunks = std::min(n, workers_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<size_t> next{0};
  TaskGroup group;
  for (size_t c = 0; c < chunks; ++c) {
    Submit(&group, [&next, n, chunk_size, &fn] {
      while (true) {
        const size_t begin = next.fetch_add(chunk_size);
        if (begin >= n) break;
        const size_t end = std::min(n, begin + chunk_size);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  // Helping wait: `next`, `fn`, and `group` stay alive until every chunk
  // task has finished, which is exactly WaitGroup's postcondition.
  WaitGroup(&group);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      entry = std::move(tasks_.front());
      tasks_.pop();
    }
    entry.fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      FinishTask(entry.group);
    }
  }
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sfa
