#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sfa {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty string is not a double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in double: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::ParseError("double out of range: '" + buf + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty string is not an integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: '" + buf + "'");
  }
  return static_cast<int64_t>(value);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithThousands(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace sfa
