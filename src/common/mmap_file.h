// Read-only memory-mapped file, RAII-owned. The zero-copy warm path
// (core/calibration_store.h LoadView) maps a calibration frame once,
// validates it once, and serves spans straight out of the mapping; POSIX
// keeps the pages alive after an unlink/rename of the path, so concurrent
// eviction or re-Store never invalidates an outstanding mapping — readers
// on the old generation simply keep the old bytes until they drop it.
#ifndef SFA_COMMON_MMAP_FILE_H_
#define SFA_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace sfa {

/// A read-only mmap of a whole file. Move-only; the mapping is released in
/// the destructor. An empty file maps to a valid object with size() == 0
/// and data() == nullptr (mmap of zero bytes is unspecified, so it is
/// skipped outright).
class MmapFile {
 public:
  /// Maps `path` read-only (PROT_READ, MAP_SHARED). The file descriptor is
  /// closed before returning — the mapping keeps the inode alive on its own.
  static Result<MmapFile> Map(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sfa

#endif  // SFA_COMMON_MMAP_FILE_H_
