#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace sfa {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

void LogLine(LogLevel level, const std::string& msg) {
  if (level < GetLogLevel()) return;
  std::string line = "[sfa ";
  line += LevelName(level);
  line += "] ";
  line += msg;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace sfa
