#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace sfa {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits → [0, 1) on the double grid.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextUint64(uint64_t n) {
  SFA_DCHECK(n > 0);
  // Lemire's unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SFA_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1ULL));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::Exponential(double lambda) {
  SFA_DCHECK(lambda > 0.0);
  // Guard against log(0): NextDouble() is in [0,1), so use 1 - u in (0,1].
  return -std::log(1.0 - NextDouble()) / lambda;
}

uint64_t Rng::Poisson(double mean) {
  SFA_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint64_t k = 0;
    while (prod > limit) {
      ++k;
      prod *= NextDouble();
    }
    return k;
  }
  // For large means, split off blocks of mean 16 (sum of independent Poissons
  // is Poisson); exact and avoids rejection-sampler complexity.
  uint64_t total = 0;
  double remaining = mean;
  while (remaining >= 30.0) {
    total += Poisson(16.0);
    remaining -= 16.0;
  }
  return total + Poisson(remaining);
}

namespace {

// Stirling tail fc(k) = log(k!) - [ (k+1/2) log(k+1) - (k+1) + log(sqrt(2pi)) ]
// used by BTRS's exact acceptance bound. Exact table for k <= 9, asymptotic
// series above (error < 1e-12 there).
double StirlingTail(uint64_t k) {
  static constexpr double kExact[] = {
      0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
      0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
      0.01189670994589177, 0.01041126526197209, 0.00925546218271273,
      0.00833056343336287};
  if (k < 10) return kExact[k];
  const double kp1 = static_cast<double>(k) + 1.0;
  const double kp1sq = kp1 * kp1;
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / kp1;
}

}  // namespace

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - Binomial(n, 1.0 - p);

  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  if (nd * p < 10.0) {
    // CDF inversion by sequential search from k = 0: expected O(n·p)
    // iterations of one multiply-divide each (no transcendentals). The start
    // pmf q^n >= e^{-n·p·(1+p)} stays well above double underflow here.
    const double s = p / q;
    double f = std::exp(nd * std::log1p(-p));  // Binomial pmf at k = 0
    double u = NextDouble();
    uint64_t k = 0;
    while (u > f && k < n) {
      u -= f;
      f *= s * (nd - static_cast<double>(k)) / (static_cast<double>(k) + 1.0);
      ++k;
    }
    return k;
  }

  // BTRS: Hörmann's transformed rejection with squeeze (1993), exact for
  // n·p >= 10 and p <= 1/2. ~1.15 uniform pairs per variate.
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / q;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((nd + 1.0) * p);
  while (true) {
    const double u = NextDouble() - 0.5;
    double v = NextDouble();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<uint64_t>(kd);
    // Exact acceptance test against the Binomial pmf (log domain).
    v = std::log(v * alpha / (a / (us * us) + b));
    const double bound =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1.0) / (kd + 1.0)) +
        StirlingTail(static_cast<uint64_t>(m)) +
        StirlingTail(n - static_cast<uint64_t>(m)) -
        StirlingTail(static_cast<uint64_t>(kd)) -
        StirlingTail(n - static_cast<uint64_t>(kd));
    if (v <= bound) return static_cast<uint64_t>(kd);
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  SFA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SFA_DCHECK(w >= 0.0);
    total += w;
  }
  SFA_CHECK_MSG(total > 0.0, "Categorical weights must not all be zero");
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: u consumed by rounding
}

Rng Rng::Split(uint64_t index) const {
  // Derive a child seed by hashing (state, index) through SplitMix64 twice.
  SplitMix64 sm(s_[0] ^ Rotl(s_[2], 31) ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  uint64_t child_seed = sm.Next() ^ Rotl(sm.Next(), 17);
  return Rng(child_seed);
}

}  // namespace sfa
