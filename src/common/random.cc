#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace sfa {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits → [0, 1) on the double grid.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextUint64(uint64_t n) {
  SFA_DCHECK(n > 0);
  // Lemire's unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SFA_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1ULL));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::Exponential(double lambda) {
  SFA_DCHECK(lambda > 0.0);
  // Guard against log(0): NextDouble() is in [0,1), so use 1 - u in (0,1].
  return -std::log(1.0 - NextDouble()) / lambda;
}

uint64_t Rng::Poisson(double mean) {
  SFA_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint64_t k = 0;
    while (prod > limit) {
      ++k;
      prod *= NextDouble();
    }
    return k;
  }
  // For large means, split off blocks of mean 16 (sum of independent Poissons
  // is Poisson); exact and avoids rejection-sampler complexity.
  uint64_t total = 0;
  double remaining = mean;
  while (remaining >= 30.0) {
    total += Poisson(16.0);
    remaining -= 16.0;
  }
  return total + Poisson(remaining);
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - Binomial(n, 1.0 - p);
  // Waiting-time method: the number of Bernoulli(p) successes in n trials is
  // found by summing Geometric(p) gaps (each gap = trials consumed up to and
  // including the next success: floor(log U / log(1-p)) + 1). Expected cost
  // O(n*p), exact distribution.
  const double log_q = std::log1p(-p);
  uint64_t successes = 0;
  double sum = 0.0;
  while (true) {
    const double gap = std::floor(std::log(1.0 - NextDouble()) / log_q) + 1.0;
    sum += gap;
    if (sum > static_cast<double>(n)) break;
    ++successes;
    if (successes >= n) break;  // numeric safety; cannot exceed in exact math
  }
  return successes > n ? n : successes;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  SFA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SFA_DCHECK(w >= 0.0);
    total += w;
  }
  SFA_CHECK_MSG(total > 0.0, "Categorical weights must not all be zero");
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: u consumed by rounding
}

Rng Rng::Split(uint64_t index) const {
  // Derive a child seed by hashing (state, index) through SplitMix64 twice.
  SplitMix64 sm(s_[0] ^ Rotl(s_[2], 31) ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  uint64_t child_seed = sm.Next() ^ Rotl(sm.Next(), 17);
  return Rng(child_seed);
}

}  // namespace sfa
