#include "common/process_util.h"

#include <cerrno>
#include <csignal>

#include <unistd.h>

namespace sfa {

int CurrentPid() { return static_cast<int>(::getpid()); }

bool ProcessAlive(int pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;  // exists, but owned by someone else
}

}  // namespace sfa
