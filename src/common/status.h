// Status / Result<T> error model, in the style of RocksDB::Status and
// arrow::Result. Library code never throws across its public boundary;
// fallible operations return Status (or Result<T> when they also produce a
// value). Programming errors are handled by the SFA_CHECK macros instead.
#ifndef SFA_COMMON_STATUS_H_
#define SFA_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace sfa {

/// Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kParseError = 7,
  kInternal = 8,
  kNotImplemented = 9,
  kResourceExhausted = 10,
  kCancelled = 11,
  kDeadlineExceeded = 12,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses carry a message that is
/// propagated (and may be annotated) up the call chain.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// used when propagating errors up a call chain. OK stays OK.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value or an error: Result<T> is the return type of fallible operations
/// that produce a value on success.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the result; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Accesses the value. Undefined behaviour if !ok(); use SFA_CHECK or test
  /// ok() first.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::move(std::get<T>(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace sfa

#endif  // SFA_COMMON_STATUS_H_
