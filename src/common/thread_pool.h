// Fixed-size thread pool used to parallelize Monte Carlo replications and
// region scans. Determinism note: callers must not rely on task execution
// order — all sfa uses derive per-task RNG substreams (Rng::Split) so results
// are identical for any thread count.
#ifndef SFA_COMMON_THREAD_POOL_H_
#define SFA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sfa {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means hardware concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all are
  /// done. Work is chunked to limit queue overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Process-wide default pool (lazily constructed with hardware concurrency).
ThreadPool& DefaultThreadPool();

}  // namespace sfa

#endif  // SFA_COMMON_THREAD_POOL_H_
