// Fixed-size thread pool used to parallelize Monte Carlo replications,
// region scans, and (since the audit pipeline) whole audit requests.
//
// Nested parallelism: ParallelFor and WaitGroup never sleep while useful
// work is queued — the waiting thread *helps* by executing queued tasks
// until its own group drains. A task running on a pool worker may therefore
// call ParallelFor again (e.g. an audit request scheduled on the pool whose
// Monte Carlo calibration fans out world batches) without deadlock and
// without spawning threads beyond the pool's fixed size.
//
// Determinism note: callers must not rely on task execution order — all sfa
// uses derive per-task RNG substreams (Rng::Split) so results are identical
// for any thread count and any interleaving, including help-running.
#ifndef SFA_COMMON_THREAD_POOL_H_
#define SFA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace sfa {

/// Cooperative cancellation flag shared between a controller and workers.
/// Cancel() is sticky and thread-safe; workers poll cancelled() at natural
/// checkpoints (between requests, between world batches) — cancellation never
/// interrupts a computation mid-flight, it only stops new work from starting.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Outcome of an admission attempt against a BoundedPriorityQueue.
enum class QueuePush {
  kAdmitted,  ///< the item was enqueued
  kRejected,  ///< the queue was at capacity (TryPush only)
  kClosed,    ///< the queue no longer accepts items
};

/// A bounded multi-producer/multi-consumer queue with fixed priority lanes:
/// Pop always serves the lowest-numbered non-empty lane (0 = most urgent) and
/// is FIFO within a lane. Capacity bounds the TOTAL number of queued items
/// across lanes, giving producers backpressure in one of two flavors:
/// TryPush rejects immediately when full (load shedding), Push blocks until
/// space frees up. Close() makes all subsequent pushes fail and lets
/// consumers drain: Pop returns false once the queue is closed AND empty.
///
/// The admission decision is serialized under one lock, so "how many items a
/// fixed submission sequence admits before rejecting" is a deterministic
/// function of capacity and consumer progress — with consumers held (see
/// AuditPipeline's paused dispatch), exactly `capacity` admissions succeed
/// regardless of producer interleaving.
template <typename T>
class BoundedPriorityQueue {
 public:
  BoundedPriorityQueue(size_t capacity, size_t num_priorities)
      : capacity_(capacity < 1 ? 1 : capacity),
        lanes_(num_priorities < 1 ? 1 : num_priorities) {}

  BoundedPriorityQueue(const BoundedPriorityQueue&) = delete;
  BoundedPriorityQueue& operator=(const BoundedPriorityQueue&) = delete;

  size_t capacity() const { return capacity_; }
  size_t num_priorities() const { return lanes_.size(); }

  /// Current number of queued items (racy by nature; exact under external
  /// serialization, e.g. while consumers are paused).
  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return size_;
  }

  /// Admits or rejects immediately. `priority` is clamped to the last lane.
  QueuePush TryPush(size_t priority, T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return QueuePush::kClosed;
    if (size_ >= capacity_) return QueuePush::kRejected;
    Enqueue(priority, std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return QueuePush::kAdmitted;
  }

  /// Admits, blocking while the queue is full. Returns kClosed if the queue
  /// is (or becomes) closed before space frees up.
  QueuePush Push(size_t priority, T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || size_ < capacity_; });
    if (closed_) return QueuePush::kClosed;
    Enqueue(priority, std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return QueuePush::kAdmitted;
  }

  /// Blocks until an item is available (highest-priority lane first, FIFO
  /// within the lane) or the queue is closed and drained; false on the
  /// latter.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;  // closed and drained
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      *out = std::move(lane.front());
      lane.pop_front();
      --size_;
      lock.unlock();
      not_full_.notify_one();
      return true;
    }
    return false;  // unreachable: size_ > 0 implies a non-empty lane
  }

  /// Removes the first queued item matching `pred` (lanes scanned in
  /// priority order, FIFO within a lane — the order Pop would serve), moving
  /// it into `*out` and freeing its capacity slot (one blocked producer is
  /// woken). Returns false when no queued item matches — items already
  /// popped by a consumer are out of reach, which is what makes this safe as
  /// a cancellation primitive: an item is either removed here exactly once
  /// or dispatched exactly once, never both.
  template <typename Pred>
  bool RemoveIf(const Pred& pred, T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& lane : lanes_) {
      for (auto it = lane.begin(); it != lane.end(); ++it) {
        if (!pred(*it)) continue;
        *out = std::move(*it);
        lane.erase(it);
        --size_;
        lock.unlock();
        not_full_.notify_one();
        return true;
      }
    }
    return false;
  }

  /// Stops admissions; queued items remain poppable until drained. Wakes
  /// every blocked producer and consumer.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  void Enqueue(size_t priority, T item) {  // requires mu_ held, size_ < cap
    if (priority >= lanes_.size()) priority = lanes_.size() - 1;
    lanes_[priority].push_back(std::move(item));
    ++size_;
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  const size_t capacity_;
  size_t size_ = 0;
  bool closed_ = false;
  std::vector<std::deque<T>> lanes_;
};

class ThreadPool {
 public:
  /// A completion counter for one logical batch of tasks. Stack-allocate,
  /// Submit against it, then WaitGroup; the group must outlive its tasks.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ThreadPool;
    size_t pending_ = 0;  // guarded by the owning pool's mu_
  };

  /// Creates a pool with `num_threads` workers; 0 means hardware concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Enqueues a task tracked by `group` (see WaitGroup).
  void Submit(TaskGroup* group, std::function<void()> task);

  /// Blocks until every submitted task has finished. Top-level callers only:
  /// calling Wait from inside a pool task deadlocks (the caller's own task
  /// can never drain). Prefer TaskGroup + WaitGroup, which is safe anywhere.
  void Wait();

  /// Returns once every task submitted against `group` has finished. The
  /// calling thread helps: while the group is outstanding it executes queued
  /// pool tasks (of any group) instead of sleeping, so WaitGroup is safe to
  /// call from inside a pool task and keeps the pool at its fixed width —
  /// nested parallel sections interleave on the same workers instead of
  /// oversubscribing.
  void WaitGroup(TaskGroup* group);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all are
  /// done. Work is chunked to limit queue overhead. Implemented as a
  /// TaskGroup + helping WaitGroup, so nesting ParallelFor inside pool tasks
  /// is safe (see class comment).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct Entry {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void WorkerLoop();
  void Enqueue(TaskGroup* group, std::function<void()> task);
  /// Post-run bookkeeping; requires mu_ held.
  void FinishTask(TaskGroup* group);

  std::vector<std::thread> workers_;
  std::queue<Entry> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Process-wide default pool (lazily constructed with hardware concurrency).
ThreadPool& DefaultThreadPool();

}  // namespace sfa

#endif  // SFA_COMMON_THREAD_POOL_H_
