// Fixed-size thread pool used to parallelize Monte Carlo replications,
// region scans, and (since the audit pipeline) whole audit requests.
//
// Nested parallelism: ParallelFor and WaitGroup never sleep while useful
// work is queued — the waiting thread *helps* by executing queued tasks
// until its own group drains. A task running on a pool worker may therefore
// call ParallelFor again (e.g. an audit request scheduled on the pool whose
// Monte Carlo calibration fans out world batches) without deadlock and
// without spawning threads beyond the pool's fixed size.
//
// Determinism note: callers must not rely on task execution order — all sfa
// uses derive per-task RNG substreams (Rng::Split) so results are identical
// for any thread count and any interleaving, including help-running.
#ifndef SFA_COMMON_THREAD_POOL_H_
#define SFA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sfa {

class ThreadPool {
 public:
  /// A completion counter for one logical batch of tasks. Stack-allocate,
  /// Submit against it, then WaitGroup; the group must outlive its tasks.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ThreadPool;
    size_t pending_ = 0;  // guarded by the owning pool's mu_
  };

  /// Creates a pool with `num_threads` workers; 0 means hardware concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Enqueues a task tracked by `group` (see WaitGroup).
  void Submit(TaskGroup* group, std::function<void()> task);

  /// Blocks until every submitted task has finished. Top-level callers only:
  /// calling Wait from inside a pool task deadlocks (the caller's own task
  /// can never drain). Prefer TaskGroup + WaitGroup, which is safe anywhere.
  void Wait();

  /// Returns once every task submitted against `group` has finished. The
  /// calling thread helps: while the group is outstanding it executes queued
  /// pool tasks (of any group) instead of sleeping, so WaitGroup is safe to
  /// call from inside a pool task and keeps the pool at its fixed width —
  /// nested parallel sections interleave on the same workers instead of
  /// oversubscribing.
  void WaitGroup(TaskGroup* group);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all are
  /// done. Work is chunked to limit queue overhead. Implemented as a
  /// TaskGroup + helping WaitGroup, so nesting ParallelFor inside pool tasks
  /// is safe (see class comment).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct Entry {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void WorkerLoop();
  void Enqueue(TaskGroup* group, std::function<void()> task);
  /// Post-run bookkeeping; requires mu_ held.
  void FinishTask(TaskGroup* group);

  std::vector<std::thread> workers_;
  std::queue<Entry> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Process-wide default pool (lazily constructed with hardware concurrency).
ThreadPool& DefaultThreadPool();

}  // namespace sfa

#endif  // SFA_COMMON_THREAD_POOL_H_
